package baseline

import (
	"strings"
	"testing"

	"opd/internal/synth"
	"opd/internal/trace"
)

func nestedEvents() trace.Events {
	// main { loop1 [0,400) { loop2 [50,150), loop2 [200,300) { loop3 [210,290) } } }
	return trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 0},
		{Kind: trace.LoopEnter, ID: 2, Time: 50},
		{Kind: trace.LoopExit, ID: 2, Time: 150},
		{Kind: trace.LoopEnter, ID: 2, Time: 200},
		{Kind: trace.LoopEnter, ID: 3, Time: 210},
		{Kind: trace.LoopExit, ID: 3, Time: 290},
		{Kind: trace.LoopExit, ID: 2, Time: 300},
		{Kind: trace.LoopExit, ID: 1, Time: 400},
		{Kind: trace.MethodExit, ID: 0, Time: 400},
	}
}

func TestHierarchyStructure(t *testing.T) {
	roots, err := Hierarchy(nestedEvents())
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1 (the outer loop)", len(roots))
	}
	outer := roots[0]
	if outer.CRI.ID != 1 || outer.CRI.Kind != LoopCRI {
		t.Errorf("root = %+v, want loop 1", outer.CRI)
	}
	if len(outer.Children) != 2 {
		t.Fatalf("outer children = %d, want 2 executions of loop 2", len(outer.Children))
	}
	second := outer.Children[1]
	if len(second.Children) != 1 || second.Children[0].CRI.ID != 3 {
		t.Errorf("loop 3 not nested under second loop-2 execution: %+v", second)
	}
	if got := outer.Depth(); got != 3 {
		t.Errorf("depth = %d, want 3", got)
	}
}

func TestLevelIntervals(t *testing.T) {
	roots, err := Hierarchy(nestedEvents())
	if err != nil {
		t.Fatal(err)
	}
	level0 := LevelIntervals(roots, 0)
	if len(level0) != 1 || level0[0] != (Interval{Start: 0, End: 400}) {
		t.Errorf("level 0 = %v", level0)
	}
	level1 := LevelIntervals(roots, 1)
	if len(level1) != 2 || level1[0] != (Interval{Start: 50, End: 150}) || level1[1] != (Interval{Start: 200, End: 300}) {
		t.Errorf("level 1 = %v", level1)
	}
	level2 := LevelIntervals(roots, 2)
	if len(level2) != 1 || level2[0] != (Interval{Start: 210, End: 290}) {
		t.Errorf("level 2 = %v", level2)
	}
	if got := LevelIntervals(roots, 9); len(got) != 0 {
		t.Errorf("level 9 = %v, want empty", got)
	}
}

func TestFormatHierarchy(t *testing.T) {
	roots, err := Hierarchy(nestedEvents())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatHierarchy(roots)
	if !strings.Contains(out, "loop id=1") || !strings.Contains(out, "    loop id=3") {
		t.Errorf("format:\n%s", out)
	}
}

func TestHierarchyErrors(t *testing.T) {
	if _, err := Hierarchy(trace.Events{{Kind: trace.LoopExit, ID: 1, Time: 0}}); err == nil {
		t.Error("invalid events accepted")
	}
}

func TestHierarchyInvariantsOnBenchmarks(t *testing.T) {
	for _, name := range []string{"compress", "javac", "mpegaudio"} {
		_, events, err := synth.Run(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		roots, err := Hierarchy(events)
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) == 0 {
			t.Errorf("%s: empty hierarchy", name)
		}
		// Invariant: every child is contained in its parent; siblings are
		// in temporal order.
		var check func(n *Node)
		check = func(n *Node) {
			var prevEnd int64 = -1 << 62
			for _, c := range n.Children {
				if !contains(n.CRI.Interval, c.CRI.Interval) {
					t.Errorf("%s: child %v escapes parent %v", name, c.CRI.Interval, n.CRI.Interval)
				}
				if c.CRI.Start < prevEnd {
					t.Errorf("%s: siblings overlap near %v", name, c.CRI.Interval)
				}
				prevEnd = c.CRI.End
				check(c)
			}
		}
		for _, r := range roots {
			check(r)
		}
	}
}
