package baseline

import (
	"testing"

	"opd/internal/synth"
	"opd/internal/trace"
)

func mustCompute(t *testing.T, es trace.Events, traceLen, mpl int64) *Solution {
	t.Helper()
	s, err := Compute(es, traceLen, mpl)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleLoopPhase(t *testing.T) {
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 5},
		{Kind: trace.LoopExit, ID: 1, Time: 105},
		{Kind: trace.MethodExit, ID: 0, Time: 110},
	}
	s := mustCompute(t, es, 110, 50)
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %v, want one", s.Phases)
	}
	if s.Phases[0] != (Interval{Start: 5, End: 105}) {
		t.Errorf("phase = %v, want [5,105)", s.Phases[0])
	}
	if got := s.InPhaseElements(); got != 100 {
		t.Errorf("in-phase elements = %d, want 100", got)
	}
	if got := s.PercentInPhase(); got < 90.8 || got > 91.0 {
		t.Errorf("percent in phase = %f, want ~90.9", got)
	}

	// Larger MPL: the loop no longer qualifies.
	s = mustCompute(t, es, 110, 101)
	if s.NumPhases() != 0 {
		t.Errorf("phases at MPL 101 = %v, want none", s.Phases)
	}
}

func TestPerfectNestMergesInner(t *testing.T) {
	// Outer loop [0, 301); three inner executions with exactly one
	// element between them (the outer back edge): distance-1 merging
	// must fold them into a single repetition interval.
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 0},
		{Kind: trace.LoopEnter, ID: 2, Time: 1},
		{Kind: trace.LoopExit, ID: 2, Time: 100},
		{Kind: trace.LoopEnter, ID: 2, Time: 101},
		{Kind: trace.LoopExit, ID: 2, Time: 200},
		{Kind: trace.LoopEnter, ID: 2, Time: 201},
		{Kind: trace.LoopExit, ID: 2, Time: 300},
		{Kind: trace.LoopExit, ID: 1, Time: 301},
		{Kind: trace.MethodExit, ID: 0, Time: 301},
	}
	s := mustCompute(t, es, 301, 150)
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %v, want one merged phase", s.Phases)
	}
	// The merged inner run [1,300) (length 299 >= 150) is innermost and
	// wins over the outer [0,301).
	if s.Phases[0] != (Interval{Start: 1, End: 300}) {
		t.Errorf("phase = %v, want [1,300)", s.Phases[0])
	}
}

func TestSeparatedInnerExecutionsAreDistinctPhases(t *testing.T) {
	// Two executions of loop 2 separated by 50 elements of other work:
	// each qualifies on its own.
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 0},
		{Kind: trace.LoopEnter, ID: 2, Time: 10},
		{Kind: trace.LoopExit, ID: 2, Time: 110},
		{Kind: trace.LoopEnter, ID: 2, Time: 160},
		{Kind: trace.LoopExit, ID: 2, Time: 260},
		{Kind: trace.LoopExit, ID: 1, Time: 280},
		{Kind: trace.MethodExit, ID: 0, Time: 280},
	}
	s := mustCompute(t, es, 280, 80)
	if s.NumPhases() != 2 {
		t.Fatalf("phases = %v, want two", s.Phases)
	}
	if s.Phases[0] != (Interval{Start: 10, End: 110}) || s.Phases[1] != (Interval{Start: 160, End: 260}) {
		t.Errorf("phases = %v", s.Phases)
	}

	// With MPL 150 neither inner execution qualifies, so the outer loop
	// becomes the phase.
	s = mustCompute(t, es, 280, 150)
	if s.NumPhases() != 1 || s.Phases[0] != (Interval{Start: 0, End: 280}) {
		t.Errorf("phases at MPL 150 = %v, want [0,280)", s.Phases)
	}
}

func TestRecursionRootCRI(t *testing.T) {
	// main -> foo -> bar -> foo: the root recursive execution is the
	// first foo invocation.
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},  // main
		{Kind: trace.MethodEnter, ID: 1, Time: 10}, // foo (root)
		{Kind: trace.MethodEnter, ID: 2, Time: 20}, // bar
		{Kind: trace.MethodEnter, ID: 1, Time: 30}, // foo again
		{Kind: trace.MethodExit, ID: 1, Time: 140},
		{Kind: trace.MethodExit, ID: 2, Time: 150},
		{Kind: trace.MethodExit, ID: 1, Time: 160},
		{Kind: trace.MethodExit, ID: 0, Time: 170},
	}
	cris, err := ExtractCRIs(es)
	if err != nil {
		t.Fatal(err)
	}
	var recs []CRI
	for _, c := range cris {
		if c.Kind == RecursionCRI {
			recs = append(recs, c)
		}
	}
	if len(recs) != 1 {
		t.Fatalf("recursion CRIs = %v, want one", recs)
	}
	if recs[0].ID != 1 || recs[0].Interval != (Interval{Start: 10, End: 160}) {
		t.Errorf("recursion CRI = %+v, want foo [10,160)", recs[0])
	}
	if got := CountRecursionRoots(es); got != 1 {
		t.Errorf("CountRecursionRoots = %d, want 1", got)
	}

	s := mustCompute(t, es, 170, 100)
	if s.NumPhases() != 1 || s.Phases[0] != (Interval{Start: 10, End: 160}) {
		t.Errorf("phases = %v, want the recursive execution [10,160)", s.Phases)
	}
}

func TestSequentialCallRun(t *testing.T) {
	// Three back-to-back invocations of method 5 (gap 1), then an
	// isolated one far away. The run forms a CRI; the singleton does not.
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.MethodEnter, ID: 5, Time: 10},
		{Kind: trace.MethodExit, ID: 5, Time: 50},
		{Kind: trace.MethodEnter, ID: 5, Time: 51},
		{Kind: trace.MethodExit, ID: 5, Time: 90},
		{Kind: trace.MethodEnter, ID: 5, Time: 91},
		{Kind: trace.MethodExit, ID: 5, Time: 130},
		{Kind: trace.MethodEnter, ID: 5, Time: 400},
		{Kind: trace.MethodExit, ID: 5, Time: 440},
		{Kind: trace.MethodExit, ID: 0, Time: 500},
	}
	cris, err := ExtractCRIs(es)
	if err != nil {
		t.Fatal(err)
	}
	var runs []CRI
	for _, c := range cris {
		if c.Kind == CallRunCRI {
			runs = append(runs, c)
		}
	}
	if len(runs) != 1 {
		t.Fatalf("call runs = %v, want one", runs)
	}
	if runs[0].Interval != (Interval{Start: 10, End: 130}) || runs[0].Count != 3 {
		t.Errorf("call run = %+v, want [10,130) count 3", runs[0])
	}

	s := mustCompute(t, es, 500, 100)
	if s.NumPhases() != 1 || s.Phases[0] != (Interval{Start: 10, End: 130}) {
		t.Errorf("phases = %v, want [10,130)", s.Phases)
	}
}

func TestInnermostWinsOverOuter(t *testing.T) {
	// An inner loop of 120 elements inside an outer of 400, separated
	// executions: with MPL 100 the inner qualifies and the outer must not
	// also be reported.
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 0},
		{Kind: trace.LoopEnter, ID: 2, Time: 100},
		{Kind: trace.LoopExit, ID: 2, Time: 220},
		{Kind: trace.LoopExit, ID: 1, Time: 400},
		{Kind: trace.MethodExit, ID: 0, Time: 400},
	}
	s := mustCompute(t, es, 400, 100)
	if s.NumPhases() != 1 {
		t.Fatalf("phases = %v, want one", s.Phases)
	}
	if s.Phases[0] != (Interval{Start: 100, End: 220}) {
		t.Errorf("phase = %v, want inner [100,220)", s.Phases[0])
	}
}

func TestMPLIncreaseCanDecreaseAndIncreaseCoverage(t *testing.T) {
	// The paper notes percent-in-phase does not vary monotonically with
	// MPL. Construct the canonical case: an inner loop [100,220) inside
	// an outer [0,400). MPL 100: inner is the phase (coverage 120/400).
	// MPL 150: inner too small, outer becomes the phase (coverage 1.0).
	// MPL 401: nothing qualifies (coverage 0).
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 0},
		{Kind: trace.LoopEnter, ID: 2, Time: 100},
		{Kind: trace.LoopExit, ID: 2, Time: 220},
		{Kind: trace.LoopExit, ID: 1, Time: 400},
		{Kind: trace.MethodExit, ID: 0, Time: 400},
	}
	cov := func(mpl int64) float64 { return mustCompute(t, es, 400, mpl).PercentInPhase() }
	if c := cov(100); c != 30 {
		t.Errorf("coverage at MPL 100 = %f, want 30", c)
	}
	if c := cov(150); c != 100 {
		t.Errorf("coverage at MPL 150 = %f, want 100", c)
	}
	if c := cov(401); c != 0 {
		t.Errorf("coverage at MPL 401 = %f, want 0", c)
	}
}

func TestInPhaseAndStates(t *testing.T) {
	s := &Solution{MPL: 10, TraceLen: 30, Phases: []Interval{{Start: 5, End: 10}, {Start: 20, End: 25}}}
	wantIn := map[int64]bool{4: false, 5: true, 9: true, 10: false, 19: false, 20: true, 24: true, 25: false}
	for pos, want := range wantIn {
		if got := s.InPhase(pos); got != want {
			t.Errorf("InPhase(%d) = %v, want %v", pos, got, want)
		}
	}
	states := s.States()
	if len(states) != 30 {
		t.Fatalf("States() length = %d", len(states))
	}
	for pos := int64(0); pos < 30; pos++ {
		if states[pos] != s.InPhase(pos) {
			t.Errorf("States()[%d] = %v disagrees with InPhase", pos, states[pos])
		}
	}
}

func TestDisableMergingAblation(t *testing.T) {
	// The perfect-nest trace of TestPerfectNestMergesInner: with merging,
	// the three inner executions fold into [1,300) and win; without it,
	// each inner execution (99 elements) is below MPL 150 and the outer
	// loop [0,301) becomes the phase instead.
	es := trace.Events{
		{Kind: trace.MethodEnter, ID: 0, Time: 0},
		{Kind: trace.LoopEnter, ID: 1, Time: 0},
		{Kind: trace.LoopEnter, ID: 2, Time: 1},
		{Kind: trace.LoopExit, ID: 2, Time: 100},
		{Kind: trace.LoopEnter, ID: 2, Time: 101},
		{Kind: trace.LoopExit, ID: 2, Time: 200},
		{Kind: trace.LoopEnter, ID: 2, Time: 201},
		{Kind: trace.LoopExit, ID: 2, Time: 300},
		{Kind: trace.LoopExit, ID: 1, Time: 301},
		{Kind: trace.MethodExit, ID: 0, Time: 301},
	}
	noMerge, err := ComputeWithOptions(es, 301, 150, Options{DisableMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	if noMerge.NumPhases() != 1 || noMerge.Phases[0] != (Interval{Start: 0, End: 301}) {
		t.Errorf("without merging: phases = %v, want outer [0,301)", noMerge.Phases)
	}
	withMerge := mustCompute(t, es, 301, 150)
	if withMerge.Phases[0] == noMerge.Phases[0] {
		t.Error("merging ablation had no effect")
	}

	// With small MPL and no merging, the inner executions fragment into
	// three separate phases.
	noMerge, err = ComputeWithOptions(es, 301, 80, Options{DisableMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	if noMerge.NumPhases() != 3 {
		t.Errorf("without merging at MPL 80: %d phases, want 3", noMerge.NumPhases())
	}
	if merged := mustCompute(t, es, 301, 80); merged.NumPhases() != 1 {
		t.Errorf("with merging at MPL 80: %d phases, want 1", merged.NumPhases())
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, 10, 0); err == nil {
		t.Error("MPL 0 accepted")
	}
	if _, err := Compute(nil, -1, 10); err == nil {
		t.Error("negative trace length accepted")
	}
	bad := trace.Events{{Kind: trace.LoopExit, ID: 1, Time: 0}}
	if _, err := Compute(bad, 10, 10); err == nil {
		t.Error("invalid events accepted")
	}
	if _, err := ExtractCRIs(bad); err == nil {
		t.Error("ExtractCRIs accepted invalid events")
	}
	if got := CountRecursionRoots(bad); got != 0 {
		t.Errorf("CountRecursionRoots on invalid events = %d, want 0", got)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: 5, End: 10}
	if iv.Len() != 5 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(5) || iv.Contains(10) || iv.Contains(4) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !iv.Overlaps(Interval{Start: 9, End: 12}) || iv.Overlaps(Interval{Start: 10, End: 12}) {
		t.Error("Overlaps boundary behaviour wrong")
	}
	if iv.String() != "[5,10)" {
		t.Errorf("String = %q", iv.String())
	}
	for _, k := range []CRIKind{LoopCRI, RecursionCRI, CallRunCRI} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if CRIKind(9).String() != "CRIKind(9)" {
		t.Errorf("unknown kind = %q", CRIKind(9).String())
	}
}

// Oracle invariants on real synthetic workloads: phases are disjoint,
// sorted, long enough, and within the trace; phase counts weakly decrease
// as MPL grows.
func TestOracleInvariantsOnBenchmarks(t *testing.T) {
	mpls := []int64{100, 500, 1000, 5000, 10000}
	for _, name := range synth.Names() {
		branches, events, err := synth.Run(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		prevCount := -1
		_ = prevCount
		for _, mpl := range mpls {
			s := mustCompute(t, events, int64(len(branches)), mpl)
			var last Interval
			for i, p := range s.Phases {
				if p.Len() < mpl {
					t.Errorf("%s MPL %d: phase %v shorter than MPL", name, mpl, p)
				}
				if p.Start < 0 || p.End > int64(len(branches)) {
					t.Errorf("%s MPL %d: phase %v outside trace", name, mpl, p)
				}
				if i > 0 && p.Start < last.End {
					t.Errorf("%s MPL %d: phases overlap or unsorted: %v then %v", name, mpl, last, p)
				}
				last = p
			}
		}
		// Every benchmark must exhibit phases at the smallest tested MPL.
		s := mustCompute(t, events, int64(len(branches)), 100)
		if s.NumPhases() == 0 {
			t.Errorf("%s: no phases at MPL 100", name)
		}
	}
}
