package core

import (
	"fmt"
	"strings"
)

// Config is a declarative description of one framework instantiation: the
// window, model, and analyzer policies plus their parameters. The sweep
// machinery enumerates Configs; Config.New builds the runnable detector.
type Config struct {
	// CWSize is the current window capacity in profile elements.
	CWSize int
	// TWSize is the trailing window's (initial) capacity. Zero means
	// "same as CWSize", the common parameterization.
	TWSize int
	// SkipFactor is the number of elements consumed per similarity
	// computation. Zero means 1.
	SkipFactor int
	// TW selects the trailing window policy.
	TW TWPolicy
	// Anchor selects the anchor policy applied at phase starts.
	Anchor AnchorPolicy
	// Resize selects the Adaptive TW resize policy applied at phase
	// starts.
	Resize ResizePolicy
	// Model selects the similarity model.
	Model ModelKind
	// Analyzer selects the analyzer policy.
	Analyzer AnalyzerKind
	// Param is the analyzer parameter: the threshold value for Threshold,
	// the delta for Average.
	Param float64
}

// FixedInterval returns the configuration used by most prior systems
// (e.g. Dhodapkar & Smith): Constant TW with skipFactor = CW size = TW
// size, so the profile is partitioned into fixed intervals and adjacent
// intervals are compared.
func FixedInterval(cwSize int, model ModelKind, analyzer AnalyzerKind, param float64) Config {
	return Config{
		CWSize:     cwSize,
		TWSize:     cwSize,
		SkipFactor: cwSize,
		TW:         ConstantTW,
		Model:      model,
		Analyzer:   analyzer,
		Param:      param,
	}
}

// withDefaults resolves the zero-value conventions.
func (c Config) withDefaults() Config {
	if c.TWSize == 0 {
		c.TWSize = c.CWSize
	}
	if c.SkipFactor == 0 {
		c.SkipFactor = 1
	}
	return c
}

// IsFixedInterval reports whether the configuration is the fixed-interval
// scheme (Constant TW, skip = CW = TW).
func (c Config) IsFixedInterval() bool {
	c = c.withDefaults()
	return c.TW == ConstantTW && c.SkipFactor == c.CWSize && c.TWSize == c.CWSize
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.CWSize <= 0 {
		return fmt.Errorf("core: config: CW size must be positive, got %d", c.CWSize)
	}
	if c.TWSize <= 0 {
		return fmt.Errorf("core: config: TW size must be positive, got %d", c.TWSize)
	}
	if c.SkipFactor <= 0 {
		return fmt.Errorf("core: config: skip factor must be positive, got %d", c.SkipFactor)
	}
	if c.SkipFactor > c.CWSize {
		return fmt.Errorf("core: config: skip factor %d exceeds CW size %d", c.SkipFactor, c.CWSize)
	}
	if c.TW != ConstantTW && c.TW != AdaptiveTW {
		return fmt.Errorf("core: config: unknown TW policy %d", c.TW)
	}
	if c.Anchor != AnchorRN && c.Anchor != AnchorLNN {
		return fmt.Errorf("core: config: unknown anchor policy %d", c.Anchor)
	}
	if c.Resize != ResizeSlide && c.Resize != ResizeMove {
		return fmt.Errorf("core: config: unknown resize policy %d", c.Resize)
	}
	if c.Model != UnweightedModel && c.Model != WeightedModel {
		return fmt.Errorf("core: config: unknown model %d", c.Model)
	}
	switch c.Analyzer {
	case ThresholdAnalyzer:
		if c.Param <= 0 || c.Param > 1 {
			return fmt.Errorf("core: config: threshold %g outside (0, 1]", c.Param)
		}
	case AverageAnalyzer:
		if c.Param <= 0 || c.Param >= 1 {
			return fmt.Errorf("core: config: average delta %g outside (0, 1)", c.Param)
		}
	default:
		return fmt.Errorf("core: config: unknown analyzer %d", c.Analyzer)
	}
	return nil
}

// New validates the configuration and builds its detector.
func (c Config) New() (*Detector, error) {
	return c.NewPooled(nil)
}

// NewPooled is New with a sweep pool attached to the model: its window
// counter slices and ring buffer are acquired from the pool when the
// detector is bound to an interned trace, and returned to it by
// Detector.ReleaseBuffers. A nil pool is equivalent to New.
func (c Config) NewPooled(pool *SweepPool) (*Detector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	model := NewSetModel(c.Model, c.CWSize, c.TWSize, c.TW, c.Anchor, c.Resize)
	if pool != nil {
		model.UsePool(pool)
	}
	var analyzer Analyzer
	if c.Analyzer == ThresholdAnalyzer {
		analyzer = NewThreshold(c.Param)
	} else {
		analyzer = NewAverage(c.Param)
	}
	return NewDetector(model, analyzer, c.SkipFactor), nil
}

// MustNew is New for configurations known valid; it panics on error.
func (c Config) MustNew() *Detector {
	d, err := c.New()
	if err != nil {
		panic(err)
	}
	return d
}

// MustNewPooled is NewPooled for configurations known valid; it panics on
// error.
func (c Config) MustNewPooled(pool *SweepPool) *Detector {
	d, err := c.NewPooled(pool)
	if err != nil {
		panic(err)
	}
	return d
}

// ID returns a compact, unique, human-readable identifier for the
// configuration, e.g. "adaptive/cw5000/tw5000/skip1/unweighted/thr0.6/rn/slide".
func (c Config) ID() string {
	c = c.withDefaults()
	var sb strings.Builder
	if c.IsFixedInterval() {
		sb.WriteString("fixedinterval")
	} else {
		sb.WriteString(c.TW.String())
	}
	fmt.Fprintf(&sb, "/cw%d/tw%d/skip%d/%s", c.CWSize, c.TWSize, c.SkipFactor, c.Model)
	if c.Analyzer == ThresholdAnalyzer {
		fmt.Fprintf(&sb, "/thr%g", c.Param)
	} else {
		fmt.Fprintf(&sb, "/avg%g", c.Param)
	}
	if c.TW == AdaptiveTW {
		fmt.Fprintf(&sb, "/%s/%s", c.Anchor, c.Resize)
	}
	return sb.String()
}
