package core

import (
	"context"
	"fmt"
	"time"

	"opd/internal/interval"
	"opd/internal/telemetry"
	"opd/internal/trace"
)

// Detector is an instantiated online phase detection algorithm: a model, an
// analyzer, and a skip factor. It follows the framework's processProfile
// protocol (Figure 3 of the paper) and additionally records the detected
// phases as intervals over the element stream, both with raw boundaries
// (the positions at which the state actually changed) and with
// anchor-adjusted starts (where the model judged the phase to have begun).
type Detector struct {
	model    Model
	sm       *SetModel // model devirtualized: non-nil when model is the built-in SetModel
	analyzer Analyzer
	skip     int

	state      State
	n          int64 // elements consumed
	pending    []trace.Branch
	pendingIDs []int32 // ID-native runs' partial group (see ProcessBatchIDs)

	phases      []interval.Interval
	adjPhases   []interval.Interval
	inPhase     bool
	curStart    int64
	curAdjStart int64
	finished    bool

	simCount int64 // similarity computations performed (overhead proxy)

	lastSim      float64 // most recent similarity value
	haveSim      bool
	onPhaseStart func(adjStart int64, sig []trace.Branch)
	onPhaseEnd   func(interval.Interval, []trace.Branch)

	probe      *telemetry.DetectorProbe
	lastFlipAt int64 // stream position of the most recent state flip
}

// NewDetector assembles a detector from a model, an analyzer, and a skip
// factor. It panics on a non-positive skip factor (a construction error).
func NewDetector(model Model, analyzer Analyzer, skip int) *Detector {
	if skip <= 0 {
		panic(fmt.Sprintf("core: skip factor must be positive, got %d", skip))
	}
	d := &Detector{model: model, analyzer: analyzer, skip: skip, state: Transition}
	// The built-in model's hot-path calls (window update, similarity) go
	// through a concrete pointer: one interface dispatch per element is
	// measurable at sweep scale.
	d.sm, _ = model.(*SetModel)
	return d
}

// SkipFactor returns the detector's skip factor.
func (d *Detector) SkipFactor() int { return d.skip }

// State returns the detector's current state.
func (d *Detector) State() State { return d.state }

// Consumed returns the number of profile elements consumed so far.
func (d *Detector) Consumed() int64 { return d.n }

// SimilarityComputations returns how many times the model computed a
// similarity value — the dominant run-time cost of a detector and the
// quantity the skip factor trades against accuracy.
func (d *Detector) SimilarityComputations() int64 { return d.simCount }

// SetProbe attaches a telemetry probe. A nil probe (the default)
// disables instrumentation; the hot path then pays one nil check per
// group and nothing else. Attach before processing begins.
func (d *Detector) SetProbe(p *telemetry.DetectorProbe) { d.probe = p }

// ProcessProfile consumes the next group of profile elements (normally
// exactly skipFactor of them; the final group of a trace may be shorter)
// and returns the detector's state, which applies to every element of the
// group. This is the paper's processProfile entry point.
func (d *Detector) ProcessProfile(elems []trace.Branch) State {
	if d.finished {
		panic("core: ProcessProfile after Finish")
	}
	if len(elems) == 0 {
		return d.state
	}
	groupStart := d.n
	d.n += int64(len(elems))
	if d.sm != nil {
		d.sm.UpdateWindows(elems)
	} else {
		d.model.UpdateWindows(elems)
	}
	return d.afterUpdate(groupStart, int64(len(elems)))
}

// ProcessProfileIDs is ProcessProfile over a pre-interned group: the
// elements arrive as dense IDs into a trace.Interned symbol table the
// model has been bound to (see RunTraceInterned). Everything downstream
// of the window update — similarity, analyzer, phase lifecycle — is the
// exact code path of ProcessProfile, so the two entry points produce
// identical output over the same stream.
func (d *Detector) ProcessProfileIDs(ids []int32) State {
	if d.finished {
		panic("core: ProcessProfileIDs after Finish")
	}
	if len(ids) == 0 {
		return d.state
	}
	groupStart := d.n
	d.n += int64(len(ids))
	if d.sm != nil {
		d.sm.UpdateWindowsIDs(ids)
	} else {
		d.model.UpdateWindowsIDs(ids)
	}
	return d.afterUpdate(groupStart, int64(len(ids)))
}

// afterUpdate runs the shared post-window-update half of a group:
// similarity computation, analyzer decision, and phase lifecycle.
func (d *Detector) afterUpdate(groupStart, groupLen int64) State {
	newState := Transition
	var sim float64
	var ok bool
	if d.probe != nil {
		start := time.Now()
		sim, ok = d.model.ComputeSimilarity()
		if ok {
			d.probe.Similarity(sim, time.Since(start).Nanoseconds())
		}
		d.probe.Group(groupLen)
	} else if d.sm != nil {
		sim, ok = d.sm.ComputeSimilarity()
	} else {
		sim, ok = d.model.ComputeSimilarity()
	}
	if ok {
		d.simCount++
		d.lastSim, d.haveSim = sim, true
		newState = d.analyzer.ProcessValue(sim)

		switch {
		case d.state.IsTransition() && newState.IsPhase():
			// A phase begins: anchor the trailing window at its start and
			// reset the analyzer's phase statistics.
			adj := d.model.AnchorTrailingWindow()
			d.analyzer.ResetStats()
			d.beginPhase(groupStart, adj)
			if d.probe != nil {
				d.probe.WindowAnchor(groupStart)
				d.probe.PhaseStart(groupStart, d.curAdjStart)
			}
			if d.onPhaseStart != nil {
				d.onPhaseStart(d.curAdjStart, d.phaseSignature())
			}
		case d.state.IsPhase() && newState.IsTransition():
			// The phase ends: capture its signature for recurrence
			// tracking, then flush the windows.
			sig := d.phaseSignature()
			d.model.ClearWindows()
			if d.probe != nil {
				d.probe.WindowClear(groupStart)
			}
			d.endPhase(groupStart, sig)
		case d.state.IsPhase():
			d.analyzer.UpdateStats(sim)
		}
	} else {
		// The model reports not-ready (windows filling, or flushed
		// mid-phase by an external reset): there is no current similarity
		// evidence, so confidence must read zero.
		d.haveSim = false
		if d.state.IsPhase() {
			d.endPhase(groupStart, d.phaseSignature())
		}
	}
	if newState != d.state {
		if d.probe != nil {
			d.probe.StateFlip(newState.IsPhase(), groupStart, groupStart-d.lastFlipAt)
		}
		d.lastFlipAt = groupStart
	}
	d.state = newState
	return d.state
}

// SetPhaseStartHook registers a callback invoked when a phase begins,
// with the anchor-corrected start position and the model's current
// signature (the elements of the young phase's windows) — the information
// an adaptive optimizer uses to recognize a recurring phase *as it
// starts*, before committing to a fresh compilation.
func (d *Detector) SetPhaseStartHook(fn func(adjStart int64, sig []trace.Branch)) {
	d.onPhaseStart = fn
}

// SetPhaseEndHook registers a callback invoked at the end of every
// detected phase with the phase's anchor-corrected interval and, when the
// model supports signatures, the phase's distinct-element signature.
func (d *Detector) SetPhaseEndHook(fn func(interval.Interval, []trace.Branch)) {
	d.onPhaseEnd = fn
}

// phaseSignature captures the current phase's signature if a hook and a
// signature-capable model are present.
func (d *Detector) phaseSignature() []trace.Branch {
	if d.onPhaseEnd == nil && d.onPhaseStart == nil {
		return nil
	}
	if s, ok := d.model.(Signaturer); ok {
		return s.PhaseSignature()
	}
	return nil
}

// Confidence returns the detector's confidence in its current state: the
// distance of the most recent similarity value from the analyzer's
// accept/reject boundary, in [0, 1]. Zero before any similarity value has
// been computed, after a phase ends or the model reports not-ready (the
// evidence belongs to a closed phase), or for analyzers that do not
// expose a threshold.
func (d *Detector) Confidence() float64 {
	if !d.haveSim {
		return 0
	}
	type boundaried interface{ Boundary() float64 }
	ba, ok := d.analyzer.(boundaried)
	if !ok {
		return 0
	}
	conf := d.lastSim - ba.Boundary()
	if conf < 0 {
		conf = -conf
	}
	if conf > 1 {
		conf = 1
	}
	return conf
}

// Process consumes a single profile element, buffering until a full
// skip-factor group is available. It returns the detector's current state.
func (d *Detector) Process(e trace.Branch) State {
	d.pending = append(d.pending, e)
	if len(d.pending) == d.skip {
		d.ProcessProfile(d.pending)
		d.pending = d.pending[:0]
	}
	return d.state
}

// ProcessBatch consumes a chunk of profile elements of arbitrary length,
// buffering any trailing partial group until the next call (or Finish).
// The grouping is chunk-size agnostic: for any way of splitting a stream
// into chunks, the sequence of skip-factor groups the detector sees — and
// therefore its output — is identical to Process called once per element
// or RunTrace over the whole stream. This is the incremental-feed seam the
// streaming server builds on. Full groups are sliced directly out of the
// chunk, so large chunks pay no per-element copying beyond the remainder.
func (d *Detector) ProcessBatch(elems []trace.Branch) State {
	if len(d.pendingIDs) > 0 {
		// The run is already on the ID-native path; mixing entry points
		// would intern the same elements twice under different IDs.
		panic("core: ProcessBatch on a detector with a pending ID group (mixed entry points)")
	}
	// Top up a partial group left over from an earlier chunk.
	if len(d.pending) > 0 {
		need := d.skip - len(d.pending)
		if need > len(elems) {
			need = len(elems)
		}
		d.pending = append(d.pending, elems[:need]...)
		elems = elems[need:]
		if len(d.pending) == d.skip {
			d.ProcessProfile(d.pending)
			d.pending = d.pending[:0]
		}
	}
	// Whole groups straight from the chunk.
	skip := d.skip
	n := (len(elems) / skip) * skip
	for i := 0; i < n; i += skip {
		d.ProcessProfile(elems[i : i+skip])
	}
	// Buffer the remainder for the next chunk.
	if n < len(elems) {
		d.pending = append(d.pending, elems[n:]...)
	}
	return d.state
}

// ProcessBatchIDs is ProcessBatch over dense IDs into a bound symbol
// table (Detector.Bind): the streaming server's symbol-negotiated fast
// path. Grouping is chunk-size agnostic exactly as in ProcessBatch — a
// trailing partial group buffers as IDs until the next call or Finish —
// and the output over any chunking is identical to ProcessBatch over
// the equivalent raw elements.
//
// A run must stay on one entry point; the only sanctioned crossover is
// a detector restored from a snapshot taken mid-ID-run, whose pending
// partial group was persisted in Branch form: the first ProcessBatchIDs
// call adopts it back into ID form through the bound table.
func (d *Detector) ProcessBatchIDs(ids []int32) State {
	if d.finished {
		panic("core: ProcessBatchIDs after Finish")
	}
	if len(d.pending) > 0 {
		d.adoptPending()
	}
	// Top up a partial group left over from an earlier chunk.
	if len(d.pendingIDs) > 0 {
		need := d.skip - len(d.pendingIDs)
		if need > len(ids) {
			need = len(ids)
		}
		d.pendingIDs = append(d.pendingIDs, ids[:need]...)
		ids = ids[need:]
		if len(d.pendingIDs) == d.skip {
			d.ProcessProfileIDs(d.pendingIDs)
			d.pendingIDs = d.pendingIDs[:0]
		}
	}
	// Whole groups straight from the chunk.
	skip := d.skip
	n := (len(ids) / skip) * skip
	for i := 0; i < n; i += skip {
		d.ProcessProfileIDs(ids[i : i+skip])
	}
	// Buffer the remainder for the next chunk.
	if n < len(ids) {
		d.pendingIDs = append(d.pendingIDs, ids[n:]...)
	}
	return d.state
}

// adoptPending converts a snapshot-restored Branch-form pending group
// into ID form so an ID-native run can continue it. Every pending
// element is necessarily in the bound table: it was interned before the
// snapshot, and the table only grows.
func (d *Detector) adoptPending() {
	if d.sm == nil {
		panic("core: ProcessBatchIDs cannot adopt a pending group on a custom model")
	}
	for _, b := range d.pending {
		id, ok := d.sm.lookupID(b)
		if !ok {
			panic(fmt.Sprintf("core: pending element %v missing from bound symbol table", b))
		}
		d.pendingIDs = append(d.pendingIDs, id)
	}
	d.pending = d.pending[:0]
}

// Bind points the model at a negotiated symbol table ahead of (or
// during) an ID-native run, reporting whether the model supports
// binding. Re-binding after the table grows is required: the model
// aliases the table's backing array, which extension may reallocate.
func (d *Detector) Bind(in *trace.Interned) bool {
	if b, ok := d.model.(InternBinder); ok {
		b.BindInterned(in)
		return true
	}
	return false
}

// InternTable returns the model's ID → element table in ID order: the
// bound symbol table when one is attached, otherwise the inverse of the
// per-model intern map. Nil for custom models. The serve layer uses it
// to re-seed a restored session's negotiated table.
func (d *Detector) InternTable() []trace.Branch {
	sm := d.sm
	if sm == nil {
		return nil
	}
	if sm.syms != nil {
		return sm.syms
	}
	table := make([]trace.Branch, len(sm.intern))
	for b, id := range sm.intern {
		table[id] = b
	}
	return table
}

func (d *Detector) beginPhase(groupStart, adjStart int64) {
	d.inPhase = true
	d.curStart = groupStart
	// The anchor looks back into the trailing window, but never before the
	// end of the previously recorded phase.
	if n := len(d.adjPhases); n > 0 && adjStart < d.adjPhases[n-1].End {
		adjStart = d.adjPhases[n-1].End
	}
	if adjStart > groupStart {
		adjStart = groupStart
	}
	if adjStart < 0 {
		adjStart = 0
	}
	d.curAdjStart = adjStart
}

func (d *Detector) endPhase(end int64, sig []trace.Branch) {
	if !d.inPhase {
		return
	}
	d.inPhase = false
	// The phase's similarity evidence dies with it: confidence must not
	// report a value carried over from a closed phase.
	d.haveSim = false
	if end > d.curStart {
		d.phases = append(d.phases, interval.Interval{Start: d.curStart, End: end})
	}
	if end > d.curAdjStart {
		adj := interval.Interval{Start: d.curAdjStart, End: end}
		d.adjPhases = append(d.adjPhases, adj)
		if d.probe != nil {
			d.probe.PhaseEnd(end, adj.Start)
		}
		if d.onPhaseEnd != nil {
			d.onPhaseEnd(adj, sig)
		}
	}
}

// Finish flushes any buffered partial group and closes a phase still open
// at the end of the stream. Further ProcessProfile calls panic.
func (d *Detector) Finish() {
	if d.finished {
		return
	}
	if len(d.pending) > 0 {
		d.ProcessProfile(d.pending)
		d.pending = d.pending[:0]
	}
	if len(d.pendingIDs) > 0 {
		d.ProcessProfileIDs(d.pendingIDs)
		d.pendingIDs = d.pendingIDs[:0]
	}
	d.endPhase(d.n, d.phaseSignature())
	if d.probe != nil {
		d.probe.EndOfStream(d.state.IsPhase(), d.n-d.lastFlipAt)
	}
	d.finished = true
}

// Phases returns the detected phases with raw boundaries: the positions at
// which the detector's output state changed. Valid after Finish.
func (d *Detector) Phases() []interval.Interval { return d.phases }

// AdjustedPhases returns the detected phases with anchor-corrected start
// boundaries (§5, Figure 8): each phase starts where the model's anchoring
// policy placed the beginning of the phase rather than where the detector
// first reported P. Valid after Finish.
func (d *Detector) AdjustedPhases() []interval.Interval { return d.adjPhases }

// RunTrace drives a fresh pass of the whole trace through the detector in
// skip-factor groups and finishes it. It returns the detector for
// chaining.
func RunTrace(d *Detector, tr trace.Trace) *Detector {
	skip := d.skip
	for i := 0; i < len(tr); i += skip {
		end := i + skip
		if end > len(tr) {
			end = len(tr)
		}
		d.ProcessProfile(tr[i:end])
	}
	d.Finish()
	return d
}

// RunTraceInterned drives a fresh pass of a pre-interned trace through
// the detector on the ID-native fast path: the model is bound to the
// stream's symbol table (when it supports binding), then consumes
// skip-factor slices of the shared ID stream in place — no per-element
// hashing, no copying. Output is identical to RunTrace over the
// equivalent raw trace.
func RunTraceInterned(d *Detector, in *trace.Interned) *Detector {
	if b, ok := d.model.(InternBinder); ok {
		b.BindInterned(in)
	}
	ids := in.IDs()
	skip := d.skip
	for i := 0; i < len(ids); i += skip {
		end := i + skip
		if end > len(ids) {
			end = len(ids)
		}
		d.ProcessProfileIDs(ids[i:end])
	}
	d.Finish()
	return d
}

// RunTraceInternedContext is RunTraceInterned with cooperative
// cancellation: the context is polled once per skip-factor group, and a
// cancel or deadline stops the pass promptly between groups. On
// cancellation it returns the context's error with the detector NOT
// finished — the caller chooses whether to Finish (flushing the partial
// group and closing any open phase, making the partial Phases readable) or
// to discard the detector. A background (non-cancellable) context costs
// nothing on the hot path.
func RunTraceInternedContext(ctx context.Context, d *Detector, in *trace.Interned) error {
	done := ctx.Done()
	if done == nil {
		RunTraceInterned(d, in)
		return nil
	}
	if b, ok := d.model.(InternBinder); ok {
		b.BindInterned(in)
	}
	ids := in.IDs()
	skip := d.skip
	for i := 0; i < len(ids); i += skip {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		end := i + skip
		if end > len(ids) {
			end = len(ids)
		}
		d.ProcessProfileIDs(ids[i:end])
	}
	d.Finish()
	return nil
}

// ReleaseBuffers returns the model's pooled buffers (if the model holds
// any) to their SweepPool so the next detector of the sweep reuses them.
// The detector's recorded phases remain valid; it must not process
// further input.
func (d *Detector) ReleaseBuffers() {
	if r, ok := d.model.(interface{ ReleaseBuffers() }); ok {
		r.ReleaseBuffers()
	}
}
