package core_test

import (
	"fmt"

	"opd/internal/core"
	"opd/internal/trace"
)

// ExampleConfig shows the declarative way to build a detector and run it
// over a branch trace with two stable regions.
func ExampleConfig() {
	var tr trace.Trace
	for i := 0; i < 60; i++ {
		tr = append(tr, trace.MakeBranch(0, 1, true))
	}
	for i := 0; i < 60; i++ {
		tr = append(tr, trace.MakeBranch(0, 2, true))
	}

	detector := core.Config{
		CWSize:   8,
		TW:       core.AdaptiveTW,
		Model:    core.UnweightedModel,
		Analyzer: core.ThresholdAnalyzer,
		Param:    0.6,
	}.MustNew()
	core.RunTrace(detector, tr)
	for i, p := range detector.Phases() {
		fmt.Printf("phase %d: %v\n", i, p)
	}
	// Output:
	// phase 0: [15,60)
	// phase 1: [75,120)
}

// ExampleDetector_Process streams elements one at a time, as a live
// profiling hook would, and reports each state change.
func ExampleDetector_Process() {
	detector := core.Config{
		CWSize:   4,
		TW:       core.ConstantTW,
		Model:    core.UnweightedModel,
		Analyzer: core.ThresholdAnalyzer,
		Param:    0.6,
	}.MustNew()

	last := core.Transition
	emit := func(site int, n int) {
		for i := 0; i < n; i++ {
			state := detector.Process(trace.MakeBranch(0, site, true))
			if state != last {
				fmt.Printf("element %d: %v -> %v\n", detector.Consumed(), last, state)
				last = state
			}
		}
	}
	emit(1, 20) // stable region A
	emit(9, 20) // stable region B
	detector.Finish()
	// Output:
	// element 8: T -> P
	// element 21: P -> T
	// element 28: T -> P
}
