// Package core implements the paper's online phase detection framework
// (CGO'06, §2): a detector consumes a stream of profile elements through a
// similarity model — which maintains a trailing window (TW) of older
// elements and a current window (CW) of the most recent ones, and turns
// each consumed group of skipFactor elements into a similarity value — and
// a similarity analyzer, which maps each similarity value to a state:
// in phase (P) or in transition (T).
//
// Three orthogonal policy axes instantiate the framework into a concrete
// algorithm:
//
//   - Window policy: skipFactor, CW size, and trailing window management
//     (Constant TW, Adaptive TW that grows to hold the whole current
//     phase, or the Fixed Interval scheme of prior work where skipFactor =
//     CW size = TW size). The Adaptive TW additionally chooses an anchor
//     policy (rightmost-noisy-plus-one or leftmost-non-noisy) and a resize
//     policy (Slide or Move) applied when a phase starts.
//   - Model policy: unweighted set similarity (the fraction of distinct CW
//     elements also present in the TW) or weighted set similarity (the
//     summed minimum relative weight of each element in the two windows).
//   - Analyzer policy: a fixed similarity threshold, or an adaptive
//     threshold a fixed delta below the running average similarity of the
//     current phase.
package core

import "fmt"

// State is the detector's per-element output: in transition or in phase.
type State uint8

const (
	// Transition marks elements between phases (T).
	Transition State = iota
	// InPhase marks elements inside a stable phase (P).
	InPhase
)

// String renders the state as the paper's T / P letters.
func (s State) String() string {
	if s == InPhase {
		return "P"
	}
	return "T"
}

// IsPhase reports whether the state is P.
func (s State) IsPhase() bool { return s == InPhase }

// IsTransition reports whether the state is T.
func (s State) IsTransition() bool { return s == Transition }

// TWPolicy selects how the trailing window is managed.
type TWPolicy uint8

const (
	// ConstantTW keeps the trailing window at a fixed size.
	ConstantTW TWPolicy = iota
	// AdaptiveTW grows the trailing window to cover the entire current
	// phase once a phase begins, and re-anchors it at phase starts.
	AdaptiveTW
)

// String names the policy.
func (p TWPolicy) String() string {
	switch p {
	case ConstantTW:
		return "constant"
	case AdaptiveTW:
		return "adaptive"
	}
	return fmt.Sprintf("TWPolicy(%d)", uint8(p))
}

// AnchorPolicy selects where, within the trailing window, a newly detected
// phase is considered to start (§5). Noisy elements are those present in
// the TW but absent from the CW.
type AnchorPolicy uint8

const (
	// AnchorRN places the anchor one element right of the rightmost noisy
	// element (the paper's RN policy, more aggressive at trimming phase
	// warm-up).
	AnchorRN AnchorPolicy = iota
	// AnchorLNN places the anchor at the leftmost non-noisy element.
	AnchorLNN
)

// String names the policy.
func (p AnchorPolicy) String() string {
	switch p {
	case AnchorRN:
		return "rn"
	case AnchorLNN:
		return "lnn"
	}
	return fmt.Sprintf("AnchorPolicy(%d)", uint8(p))
}

// ResizePolicy selects how the windows are restructured around the anchor
// point when an Adaptive TW detector starts a phase (§5).
type ResizePolicy uint8

const (
	// ResizeSlide slides the TW right so its left boundary sits at the
	// anchor, temporarily shrinking the CW (which then refills).
	ResizeSlide ResizePolicy = iota
	// ResizeMove moves the TW's left boundary right to the anchor,
	// shrinking the TW and leaving the CW untouched.
	ResizeMove
)

// String names the policy.
func (p ResizePolicy) String() string {
	switch p {
	case ResizeSlide:
		return "slide"
	case ResizeMove:
		return "move"
	}
	return fmt.Sprintf("ResizePolicy(%d)", uint8(p))
}

// ModelKind selects the similarity computation.
type ModelKind uint8

const (
	// UnweightedModel computes asymmetric working-set similarity: the
	// percentage of distinct CW elements also present in the TW.
	UnweightedModel ModelKind = iota
	// WeightedModel computes symmetric weighted-set similarity: the sum
	// over elements of the minimum of the element's relative weight in
	// each window.
	WeightedModel
)

// String names the model.
func (m ModelKind) String() string {
	switch m {
	case UnweightedModel:
		return "unweighted"
	case WeightedModel:
		return "weighted"
	}
	return fmt.Sprintf("ModelKind(%d)", uint8(m))
}

// AnalyzerKind selects the analyzer policy.
type AnalyzerKind uint8

const (
	// ThresholdAnalyzer reports P when similarity meets a fixed threshold.
	ThresholdAnalyzer AnalyzerKind = iota
	// AverageAnalyzer reports P when similarity is within a fixed delta
	// below the running average similarity of the current phase.
	AverageAnalyzer
)

// String names the analyzer.
func (a AnalyzerKind) String() string {
	switch a {
	case ThresholdAnalyzer:
		return "threshold"
	case AverageAnalyzer:
		return "average"
	}
	return fmt.Sprintf("AnalyzerKind(%d)", uint8(a))
}
