package core

import (
	"testing"
	"testing/quick"

	"opd/internal/interval"
	"opd/internal/trace"
)

// randomStream builds a stream of stable runs of random sites with random
// lengths, deterministic in seed.
func randomStream(seed int64, n int) trace.Trace {
	rng := seed
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	var tr trace.Trace
	for len(tr) < n {
		site := next(20)
		run := next(60) + 1
		for i := 0; i < run && len(tr) < n; i++ {
			tr = append(tr, el(site))
		}
	}
	return tr
}

// TestDetectorOutputInvariants drives every policy combination over random
// streams and checks the structural invariants any detector must satisfy:
// phases and adjusted phases are sorted, disjoint, within the trace; every
// adjusted phase starts no later than its raw counterpart; output is
// deterministic.
func TestDetectorOutputInvariants(t *testing.T) {
	configs := []Config{}
	for _, tw := range []TWPolicy{ConstantTW, AdaptiveTW} {
		for _, model := range []ModelKind{UnweightedModel, WeightedModel} {
			for _, anchor := range []AnchorPolicy{AnchorRN, AnchorLNN} {
				for _, resize := range []ResizePolicy{ResizeSlide, ResizeMove} {
					configs = append(configs,
						Config{CWSize: 12, TWSize: 12, SkipFactor: 3, TW: tw, Anchor: anchor,
							Resize: resize, Model: model, Analyzer: ThresholdAnalyzer, Param: 0.6},
						Config{CWSize: 10, TWSize: 20, SkipFactor: 1, TW: tw, Anchor: anchor,
							Resize: resize, Model: model, Analyzer: AverageAnalyzer, Param: 0.1},
					)
				}
			}
		}
	}
	f := func(seed int64) bool {
		tr := randomStream(seed, 600)
		for _, cfg := range configs {
			d := cfg.MustNew()
			RunTrace(d, tr)
			n := int64(len(tr))
			if err := interval.Validate(d.Phases(), n); err != nil {
				t.Logf("%s: %v", cfg.ID(), err)
				return false
			}
			if err := interval.Validate(d.AdjustedPhases(), n); err != nil {
				t.Logf("%s (adjusted): %v", cfg.ID(), err)
				return false
			}
			raw, adj := d.Phases(), d.AdjustedPhases()
			if len(raw) != len(adj) {
				t.Logf("%s: %d raw vs %d adjusted phases", cfg.ID(), len(raw), len(adj))
				return false
			}
			for i := range raw {
				if adj[i].Start > raw[i].Start || adj[i].End != raw[i].End {
					t.Logf("%s: adjusted %v vs raw %v", cfg.ID(), adj[i], raw[i])
					return false
				}
			}
			// Determinism: a second run produces identical output.
			d2 := cfg.MustNew()
			RunTrace(d2, tr)
			if len(d2.Phases()) != len(raw) {
				t.Logf("%s: non-deterministic", cfg.ID())
				return false
			}
			for i := range raw {
				if d2.Phases()[i] != raw[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
