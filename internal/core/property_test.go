package core

import (
	"testing"
	"testing/quick"

	"opd/internal/interval"
	"opd/internal/trace"
)

// randomStream builds a stream of stable runs of random sites with random
// lengths, deterministic in seed.
func randomStream(seed int64, n int) trace.Trace {
	rng := seed
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	var tr trace.Trace
	for len(tr) < n {
		site := next(20)
		run := next(60) + 1
		for i := 0; i < run && len(tr) < n; i++ {
			tr = append(tr, el(site))
		}
	}
	return tr
}

// TestDetectorOutputInvariants drives every policy combination over random
// streams and checks the structural invariants any detector must satisfy:
// phases and adjusted phases are sorted, disjoint, within the trace; every
// adjusted phase starts no later than its raw counterpart; output is
// deterministic.
func TestDetectorOutputInvariants(t *testing.T) {
	configs := propertyConfigs()
	f := func(seed int64) bool {
		tr := randomStream(seed, 600)
		for _, cfg := range configs {
			d := cfg.MustNew()
			RunTrace(d, tr)
			n := int64(len(tr))
			if err := interval.Validate(d.Phases(), n); err != nil {
				t.Logf("%s: %v", cfg.ID(), err)
				return false
			}
			if err := interval.Validate(d.AdjustedPhases(), n); err != nil {
				t.Logf("%s (adjusted): %v", cfg.ID(), err)
				return false
			}
			raw, adj := d.Phases(), d.AdjustedPhases()
			if len(raw) != len(adj) {
				t.Logf("%s: %d raw vs %d adjusted phases", cfg.ID(), len(raw), len(adj))
				return false
			}
			for i := range raw {
				if adj[i].Start > raw[i].Start || adj[i].End != raw[i].End {
					t.Logf("%s: adjusted %v vs raw %v", cfg.ID(), adj[i], raw[i])
					return false
				}
			}
			// Determinism: a second run produces identical output.
			d2 := cfg.MustNew()
			RunTrace(d2, tr)
			if len(d2.Phases()) != len(raw) {
				t.Logf("%s: non-deterministic", cfg.ID())
				return false
			}
			for i := range raw {
				if d2.Phases()[i] != raw[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// propertyConfigs enumerates every policy-axis combination (both window
// policies, models, anchors, resizes, analyzers, and a skip > 1 variant)
// — the full configuration surface of the framework.
func propertyConfigs() []Config {
	var configs []Config
	for _, tw := range []TWPolicy{ConstantTW, AdaptiveTW} {
		for _, model := range []ModelKind{UnweightedModel, WeightedModel} {
			for _, anchor := range []AnchorPolicy{AnchorRN, AnchorLNN} {
				for _, resize := range []ResizePolicy{ResizeSlide, ResizeMove} {
					configs = append(configs,
						Config{CWSize: 12, TWSize: 12, SkipFactor: 3, TW: tw, Anchor: anchor,
							Resize: resize, Model: model, Analyzer: ThresholdAnalyzer, Param: 0.6},
						Config{CWSize: 10, TWSize: 20, SkipFactor: 1, TW: tw, Anchor: anchor,
							Resize: resize, Model: model, Analyzer: AverageAnalyzer, Param: 0.1},
						Config{CWSize: 8, TWSize: 8, SkipFactor: 8, TW: tw, Anchor: anchor,
							Resize: resize, Model: model, Analyzer: ThresholdAnalyzer, Param: 0.5},
					)
				}
			}
		}
	}
	return configs
}

// TestInternedPathMatchesMapPath is the equivalence property of the
// shared-intern engine: over randomized traces and the full config
// enumeration, the ID-native fast path (RunTraceInterned, with and
// without a SweepPool) must yield byte-identical phases, adjusted
// phases, and similarity counts to the legacy per-model map path.
func TestInternedPathMatchesMapPath(t *testing.T) {
	configs := propertyConfigs()
	equal := func(a, b []interval.Interval) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		tr := randomStream(seed, 700)
		in := trace.Intern(tr)
		pool := NewSweepPool(in.Cardinality())
		for _, cfg := range configs {
			legacy := RunTrace(cfg.MustNew(), tr)
			fast := RunTraceInterned(cfg.MustNew(), in)
			pooled := RunTraceInterned(cfg.MustNewPooled(pool), in)
			for _, d := range []*Detector{fast, pooled} {
				if !equal(legacy.Phases(), d.Phases()) {
					t.Logf("%s: phases diverge: map %v vs interned %v", cfg.ID(), legacy.Phases(), d.Phases())
					return false
				}
				if !equal(legacy.AdjustedPhases(), d.AdjustedPhases()) {
					t.Logf("%s: adjusted phases diverge", cfg.ID())
					return false
				}
				if legacy.SimilarityComputations() != d.SimilarityComputations() {
					t.Logf("%s: %d vs %d similarity computations",
						cfg.ID(), legacy.SimilarityComputations(), d.SimilarityComputations())
					return false
				}
			}
			pooled.ReleaseBuffers()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestInternedPathPhaseSignatures checks the remaining model output the
// equivalence property does not cover: phase signatures reported through
// the end-phase hook match between the two paths (as sets; map iteration
// order differs).
func TestInternedPathPhaseSignatures(t *testing.T) {
	tr := randomStream(3, 900)
	in := trace.Intern(tr)
	cfg := Config{CWSize: 12, TWSize: 12, SkipFactor: 3, TW: AdaptiveTW,
		Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6}
	collect := func(run func(*Detector)) [][]trace.Branch {
		var sigs [][]trace.Branch
		d := cfg.MustNew()
		d.SetPhaseEndHook(func(_ interval.Interval, sig []trace.Branch) {
			sigs = append(sigs, sig)
		})
		run(d)
		return sigs
	}
	legacy := collect(func(d *Detector) { RunTrace(d, tr) })
	fast := collect(func(d *Detector) { RunTraceInterned(d, in) })
	if len(legacy) == 0 {
		t.Fatal("trace produced no phases; test is vacuous")
	}
	if len(legacy) != len(fast) {
		t.Fatalf("%d legacy signatures vs %d interned", len(legacy), len(fast))
	}
	asSet := func(sig []trace.Branch) map[trace.Branch]bool {
		s := make(map[trace.Branch]bool, len(sig))
		for _, e := range sig {
			s[e] = true
		}
		return s
	}
	for i := range legacy {
		a, b := asSet(legacy[i]), asSet(fast[i])
		if len(a) != len(b) {
			t.Fatalf("signature %d: %d elements vs %d", i, len(a), len(b))
		}
		for e := range a {
			if !b[e] {
				t.Fatalf("signature %d: interned path missing %v", i, e)
			}
		}
	}
}
