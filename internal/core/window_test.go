package core

import (
	"math"
	"testing"

	"opd/internal/trace"
)

// el builds a profile element at offset off in method 0.
func el(off int) trace.Branch { return trace.MakeBranch(0, off, true) }

func pushAll(w *windows, ids ...int32) {
	for _, id := range ids {
		w.push(id)
	}
}

// nonzero counts the distinct ids with a positive count.
func nonzero(counts []int32) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestWindowFillAndOverflow(t *testing.T) {
	w := newWindows(3, 2, ConstantTW)
	if w.ready() {
		t.Error("fresh windows report ready")
	}
	pushAll(w, 1, 2, 3)
	if w.ready() {
		t.Error("ready before TW fills")
	}
	if w.cwLen() != 3 || w.twLen != 0 {
		t.Errorf("cw=%d tw=%d, want 3/0", w.cwLen(), w.twLen)
	}
	pushAll(w, 4, 5)
	if !w.ready() {
		t.Error("not ready after both windows fill")
	}
	if w.cwLen() != 3 || w.twLen != 2 {
		t.Errorf("cw=%d tw=%d, want 3/2", w.cwLen(), w.twLen)
	}
	// Next pushes must drop the TW front and keep sizes constant.
	pushAll(w, 6)
	if w.cwLen() != 3 || w.twLen != 2 {
		t.Errorf("after overflow: cw=%d tw=%d, want 3/2", w.cwLen(), w.twLen)
	}
	if w.firstIndex != 1 {
		t.Errorf("firstIndex = %d, want 1", w.firstIndex)
	}
	// Contents: TW = elements 2,3 ; CW = 4,5,6.
	if w.twCounts[2] != 1 || w.twCounts[3] != 1 || nonzero(w.twCounts) != 2 {
		t.Errorf("TW counts wrong: %v", w.twCounts)
	}
	if w.cwCounts[4] != 1 || w.cwCounts[6] != 1 || nonzero(w.cwCounts) != 3 {
		t.Errorf("CW counts wrong: %v", w.cwCounts)
	}
}

func TestUnweightedSimilarityPaperExample(t *testing.T) {
	// CW contains {a, b}, TW contains {a, c}: similarity 0.5 regardless of
	// how often a appears.
	w := newWindows(2, 2, ConstantTW)
	pushAll(w, 1, 3) // will end up in TW: a=1, c=3
	pushAll(w, 1, 2) // CW: a=1, b=2
	if !w.ready() {
		t.Fatal("windows should be full")
	}
	if got := w.unweightedSimilarity(); !approx(got, 0.5) {
		t.Errorf("unweighted similarity = %f, want 0.5", got)
	}
	// Frequency must not matter: CW {a, a}: similarity 1.0 even though TW
	// holds a single a.
	w = newWindows(2, 2, ConstantTW)
	pushAll(w, 1, 3)
	pushAll(w, 1, 1)
	if got := w.unweightedSimilarity(); !approx(got, 1.0) {
		t.Errorf("unweighted similarity = %f, want 1.0", got)
	}
}

func TestWeightedSimilarityPaperExample(t *testing.T) {
	// Paper example: CW {(a,5),(b,3),(c,2)}, TW {(a,25),(b,15),(c,10),(d,50)}
	// -> min(.25,.5)+min(.15,.3)+min(.10,.2) = 0.5
	w := newWindows(10, 100, ConstantTW)
	push := func(id int32, n int) {
		for i := 0; i < n; i++ {
			w.push(id)
		}
	}
	// Fill TW first (oldest elements), then CW.
	push(1, 25) // a
	push(2, 15) // b
	push(3, 10) // c
	push(4, 50) // d
	push(1, 5)  // CW: a
	push(2, 3)  // b
	push(3, 2)  // c
	if !w.ready() {
		t.Fatal("windows should be full")
	}
	if w.cwLen() != 10 || w.twLen != 100 {
		t.Fatalf("cw=%d tw=%d, want 10/100", w.cwLen(), w.twLen)
	}
	if got := w.weightedSimilarity(); !approx(got, 0.5) {
		t.Errorf("weighted similarity = %f, want 0.5", got)
	}
}

func TestSimilarityEmptyWindows(t *testing.T) {
	w := newWindows(4, 4, ConstantTW)
	if got := w.unweightedSimilarity(); got != 0 {
		t.Errorf("unweighted on empty = %f", got)
	}
	if got := w.weightedSimilarity(); got != 0 {
		t.Errorf("weighted on empty = %f", got)
	}
}

func TestAnchorIndexRNAndLNN(t *testing.T) {
	// TW = [a, b, c], CW = [a, a, c]: b is noisy.
	// RN selects the position after b (index 2, where c sits);
	// LNN selects the leftmost non-noisy (index 0, where a sits).
	w := newWindows(3, 3, AdaptiveTW)
	pushAll(w, 1, 2, 3) // TW: a, b, c
	pushAll(w, 1, 1, 3) // CW: a, a, c
	if got := w.anchorIndex(AnchorRN); got != 2 {
		t.Errorf("RN anchor = %d, want 2", got)
	}
	if got := w.anchorIndex(AnchorLNN); got != 0 {
		t.Errorf("LNN anchor = %d, want 0", got)
	}

	// No noisy elements: RN keeps the whole TW.
	w = newWindows(2, 2, AdaptiveTW)
	pushAll(w, 1, 2, 1, 2)
	if got := w.anchorIndex(AnchorRN); got != 0 {
		t.Errorf("RN anchor with clean TW = %d, want 0", got)
	}
	if got := w.anchorIndex(AnchorLNN); got != 0 {
		t.Errorf("LNN anchor with clean TW = %d, want 0", got)
	}

	// All noisy: RN and LNN both discard the whole TW.
	w = newWindows(2, 2, AdaptiveTW)
	pushAll(w, 5, 6, 1, 2)
	if got := w.anchorIndex(AnchorRN); got != 2 {
		t.Errorf("RN anchor with all-noisy TW = %d, want 2", got)
	}
	if got := w.anchorIndex(AnchorLNN); got != 2 {
		t.Errorf("LNN anchor with all-noisy TW = %d, want 2", got)
	}
}

func TestAnchorSlideVsMove(t *testing.T) {
	build := func() *windows {
		w := newWindows(3, 4, AdaptiveTW)
		pushAll(w, 9, 9, 1, 2) // TW: x, x, a, b   (x noisy)
		pushAll(w, 1, 2, 1)    // CW: a, b, a
		return w
	}
	w := build()
	if w.twLen != 4 || w.cwLen() != 3 {
		t.Fatalf("precondition: tw=%d cw=%d", w.twLen, w.cwLen())
	}
	idx := w.anchorIndex(AnchorRN)
	if idx != 2 {
		t.Fatalf("anchor idx = %d, want 2", idx)
	}

	// Slide: TW keeps nominal size 4 by absorbing CW elements; CW shrinks.
	pos := w.anchorAt(idx, ResizeSlide)
	if pos != 2 {
		t.Errorf("anchor position = %d, want 2", pos)
	}
	if w.twLen != 4 || w.cwLen() != 1 {
		t.Errorf("after slide: tw=%d cw=%d, want 4/1", w.twLen, w.cwLen())
	}
	if !w.anchored {
		t.Error("slide did not mark windows anchored")
	}
	// TW is now a, b, a, b; CW holds the final a.
	if w.twCounts[1] != 2 || w.twCounts[2] != 2 {
		t.Errorf("TW counts after slide: %v", w.twCounts)
	}
	if w.cwCounts[1] != 1 || nonzero(w.cwCounts) != 1 {
		t.Errorf("CW counts after slide: %v", w.cwCounts)
	}

	// Move: TW shrinks; CW untouched.
	w = build()
	pos = w.anchorAt(w.anchorIndex(AnchorRN), ResizeMove)
	if pos != 2 {
		t.Errorf("anchor position = %d, want 2", pos)
	}
	if w.twLen != 2 || w.cwLen() != 3 {
		t.Errorf("after move: tw=%d cw=%d, want 2/3", w.twLen, w.cwLen())
	}
}

func TestAnchoredTWGrowsUnbounded(t *testing.T) {
	w := newWindows(2, 2, AdaptiveTW)
	pushAll(w, 1, 1, 1, 1)
	w.anchorAt(0, ResizeSlide)
	for i := 0; i < 100; i++ {
		w.push(1)
	}
	if w.twLen != 102 {
		t.Errorf("anchored TW length = %d, want 102", w.twLen)
	}
	if w.cwLen() != 2 {
		t.Errorf("CW length = %d, want 2", w.cwLen())
	}
}

func TestConstantPolicyIgnoresAnchorRestructure(t *testing.T) {
	w := newWindows(3, 3, ConstantTW)
	pushAll(w, 9, 1, 2, 1, 2, 1)
	pos := w.anchorAt(w.anchorIndex(AnchorRN), ResizeSlide)
	if pos != 1 {
		t.Errorf("anchor position = %d, want 1", pos)
	}
	if w.anchored {
		t.Error("constant TW must not become anchored")
	}
	if w.twLen != 3 || w.cwLen() != 3 {
		t.Errorf("constant TW restructured: tw=%d cw=%d", w.twLen, w.cwLen())
	}
}

func TestClearReinitializesWithLastBatch(t *testing.T) {
	w := newWindows(3, 3, AdaptiveTW)
	pushAll(w, 1, 2, 3, 4, 5, 6)
	if !w.ready() {
		t.Fatal("windows should be full")
	}
	w.clear([]int32{6})
	if w.ready() {
		t.Error("cleared windows still ready")
	}
	if w.cwLen() != 1 || w.twLen != 0 {
		t.Errorf("after clear: cw=%d tw=%d, want 1/0", w.cwLen(), w.twLen)
	}
	if w.cwCounts[6] != 1 || nonzero(w.cwCounts) != 1 {
		t.Errorf("CW counts after clear: %v", w.cwCounts)
	}
	if w.firstIndex != 5 {
		t.Errorf("firstIndex after clear = %d, want 5", w.firstIndex)
	}
	// Windows refill and become ready again.
	pushAll(w, 6, 6, 6, 6, 6)
	if !w.ready() {
		t.Error("windows did not refill after clear")
	}
}

func TestOverlapInvariant(t *testing.T) {
	// Randomized pushes with periodic anchor/clear: the overlap counter
	// must always equal the recomputed ground truth.
	w := newWindows(5, 7, AdaptiveTW)
	rng := int64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % n
	}
	check := func(step int) {
		want := map[int32]bool{}
		for id, c := range w.cwCounts {
			if c > 0 && w.twCounts[id] > 0 {
				want[int32(id)] = true
			}
		}
		if len(w.overlapIDs) != len(want) {
			t.Fatalf("step %d: overlap set size = %d, want %d", step, len(w.overlapIDs), len(want))
		}
		for i, id := range w.overlapIDs {
			if !want[id] {
				t.Fatalf("step %d: id %d in overlap set but not in both windows", step, id)
			}
			if w.overlapPos[id] != int32(i+1) {
				t.Fatalf("step %d: overlapPos[%d] = %d, want %d", step, id, w.overlapPos[id], i+1)
			}
		}
	}
	for i := 0; i < 5000; i++ {
		w.push(int32(next(12)))
		check(i)
		switch next(100) {
		case 0:
			w.anchorAt(w.anchorIndex(AnchorRN), ResizeSlide)
			check(i)
		case 1:
			w.anchorAt(w.anchorIndex(AnchorLNN), ResizeMove)
			check(i)
		case 2:
			w.clear([]int32{int32(next(12))})
			check(i)
		}
	}
}

func TestCompaction(t *testing.T) {
	w := newWindows(4, 4, ConstantTW)
	for i := 0; i < 50000; i++ {
		w.push(int32(i % 9))
	}
	if len(w.buf) > 10000 {
		t.Errorf("buffer not compacted: len %d", len(w.buf))
	}
	if w.cwLen() != 4 || w.twLen != 4 {
		t.Errorf("sizes after compaction: cw=%d tw=%d", w.cwLen(), w.twLen)
	}
	if w.firstIndex != 50000-8 {
		t.Errorf("firstIndex = %d, want %d", w.firstIndex, 50000-8)
	}
}
