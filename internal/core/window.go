package core

// windows maintains the trailing window and current window over the
// element stream as one contiguous buffer: buf[head : head+twLen] is the
// TW and everything after it is the CW. Elements are interned small
// integers (the SetModel maps profile elements to dense IDs), so all
// multiset counters are plain slices and consuming one element costs O(1)
// array operations regardless of window sizes.
type windows struct {
	cwSize int
	twSize int
	policy TWPolicy

	buf        []int32
	head       int
	twLen      int
	firstIndex int64 // global stream index of buf[head]
	nextIndex  int64 // global stream index of the next element pushed

	cwCounts   []int32
	twCounts   []int32
	cwDistinct int

	// The overlap set — distinct elements present in both windows — is
	// maintained incrementally as an unordered dense slice plus an id →
	// position index, so weighted similarity iterates exactly the ids
	// that contribute instead of scanning counter slices whose length is
	// the trace's full symbol cardinality.
	overlapIDs []int32 // ids present in both windows, unordered
	overlapPos []int32 // id -> index+1 in overlapIDs (0 = absent)

	anchored bool // AdaptiveTW: in phase, TW grows without bound
	filled   bool // both windows have filled since the last clear

	pool *SweepPool // when set, counter slices and buf come from the pool
}

func newWindows(cwSize, twSize int, policy TWPolicy) *windows {
	return &windows{cwSize: cwSize, twSize: twSize, policy: policy}
}

func (w *windows) cwLen() int { return len(w.buf) - w.head - w.twLen }

// grow ensures the counter slices cover id, rounding capacity up to the
// next power of two so a stream of fresh IDs costs amortized O(1) per
// element rather than one reallocation each. The interned fast path never
// reaches the reallocation: ensureCap sizes the slices once from the
// symbol-table cardinality.
func (w *windows) grow(id int32) {
	if int(id) < len(w.cwCounts) {
		return
	}
	n := 8
	for n <= int(id) {
		n <<= 1
	}
	cw := make([]int32, n)
	copy(cw, w.cwCounts)
	w.cwCounts = cw
	tw := make([]int32, n)
	copy(tw, w.twCounts)
	w.twCounts = tw
	op := make([]int32, n)
	copy(op, w.overlapPos)
	w.overlapPos = op
}

// ensureCap sizes the counter slices for IDs in [0, n) up-front — from
// the pool when one is attached — so subsequent pushes skip growth checks
// entirely.
func (w *windows) ensureCap(n int) {
	if n <= len(w.cwCounts) {
		return
	}
	if w.pool != nil && len(w.cwCounts) == 0 {
		w.cwCounts = w.pool.counterSlice(n)
		w.twCounts = w.pool.counterSlice(n)
		w.overlapPos = w.pool.counterSlice(n)
		w.buf = w.pool.windowBuf()
		return
	}
	cw := make([]int32, n)
	copy(cw, w.cwCounts)
	w.cwCounts = cw
	tw := make([]int32, n)
	copy(tw, w.twCounts)
	w.twCounts = tw
	op := make([]int32, n)
	copy(op, w.overlapPos)
	w.overlapPos = op
}

// release returns pooled buffers to the pool. The windows must not be
// used afterwards.
func (w *windows) release() {
	if w.pool == nil {
		return
	}
	w.pool.putCounterSlice(w.cwCounts)
	w.pool.putCounterSlice(w.twCounts)
	w.pool.putCounterSlice(w.overlapPos)
	w.pool.putWindowBuf(w.buf)
	w.pool.putWindowBuf(w.overlapIDs)
	w.cwCounts, w.twCounts, w.overlapPos = nil, nil, nil
	w.buf, w.overlapIDs = nil, nil
}

// overlapAdd records id entering the overlap set.
func (w *windows) overlapAdd(id int32) {
	w.overlapIDs = append(w.overlapIDs, id)
	w.overlapPos[id] = int32(len(w.overlapIDs))
}

// overlapRemove records id leaving the overlap set (swap-remove, O(1)).
func (w *windows) overlapRemove(id int32) {
	p := w.overlapPos[id] - 1
	last := int32(len(w.overlapIDs) - 1)
	moved := w.overlapIDs[last]
	w.overlapIDs[p] = moved
	w.overlapPos[moved] = p + 1
	w.overlapIDs = w.overlapIDs[:last]
	w.overlapPos[id] = 0
}

func (w *windows) addCW(id int32) {
	w.cwCounts[id]++
	if w.cwCounts[id] == 1 {
		w.cwDistinct++
		if w.twCounts[id] > 0 {
			w.overlapAdd(id)
		}
	}
}

func (w *windows) removeCW(id int32) {
	w.cwCounts[id]--
	if w.cwCounts[id] == 0 {
		w.cwDistinct--
		if w.twCounts[id] > 0 {
			w.overlapRemove(id)
		}
	}
}

func (w *windows) addTW(id int32) {
	w.twCounts[id]++
	if w.twCounts[id] == 1 && w.cwCounts[id] > 0 {
		w.overlapAdd(id)
	}
}

func (w *windows) removeTW(id int32) {
	w.twCounts[id]--
	if w.twCounts[id] == 0 && w.cwCounts[id] > 0 {
		w.overlapRemove(id)
	}
}

// push consumes one element into the CW, shifting overflow into the TW and
// dropping from the TW's far end when the policy bounds it.
func (w *windows) push(id int32) {
	w.grow(id)
	w.pushID(id)
}

// pushID is push for pre-interned elements whose IDs are already covered
// by the counter slices (ensureCap was called with the symbol-table
// cardinality): the growth check is gone from the per-element path.
func (w *windows) pushID(id int32) {
	w.buf = append(w.buf, id)
	w.nextIndex++
	w.addCW(id)
	if w.cwLen() > w.cwSize {
		// CW front crosses into the TW.
		moved := w.buf[w.head+w.twLen]
		w.removeCW(moved)
		w.addTW(moved)
		w.twLen++
	}
	if w.twLen > w.twSize && !w.anchored {
		dropped := w.buf[w.head]
		w.removeTW(dropped)
		w.head++
		w.twLen--
		w.firstIndex++
		w.compact()
	}
	if !w.filled && w.cwLen() == w.cwSize && w.twLen >= w.twSize {
		w.filled = true
	}
}

// compact reclaims the dead prefix of buf once it dominates the slice.
func (w *windows) compact() {
	if w.head >= 4096 && w.head > len(w.buf)/2 {
		n := copy(w.buf, w.buf[w.head:])
		w.buf = w.buf[:n]
		w.head = 0
	}
}

// ready reports whether similarity may be computed: both windows must have
// filled at least once since the last clear. (After an anchoring slide the
// CW may be temporarily short; per §5 similarity is still computed while
// it refills.)
func (w *windows) ready() bool { return w.filled }

// unweightedSimilarity returns the fraction of distinct CW elements also
// present in the TW.
func (w *windows) unweightedSimilarity() float64 {
	if w.cwDistinct == 0 {
		return 0
	}
	return float64(len(w.overlapIDs)) / float64(w.cwDistinct)
}

// weightedSimilarity returns the symmetric weighted-set similarity: the
// sum over elements of the minimum of the element's relative weight in
// each window. Only elements present in both windows contribute, and the
// maintained overlap set enumerates exactly those, so the cost is
// O(|overlap|) — bounded by the window sizes, independent of the trace's
// symbol cardinality.
func (w *windows) weightedSimilarity() float64 {
	cwTotal, twTotal := w.cwLen(), w.twLen
	if cwTotal == 0 || twTotal == 0 {
		return 0
	}
	var sum float64
	for _, id := range w.overlapIDs {
		cwWeight := float64(w.cwCounts[id]) / float64(cwTotal)
		twWeight := float64(w.twCounts[id]) / float64(twTotal)
		if cwWeight < twWeight {
			sum += cwWeight
		} else {
			sum += twWeight
		}
	}
	return sum
}

// anchorIndex locates the anchor point within the TW under the given
// policy. Noisy elements are TW elements absent from the CW. The returned
// index is relative to the TW start (0 keeps the whole TW; twLen drops all
// of it).
func (w *windows) anchorIndex(policy AnchorPolicy) int {
	tw := w.buf[w.head : w.head+w.twLen]
	switch policy {
	case AnchorRN:
		for i := len(tw) - 1; i >= 0; i-- {
			if w.cwCounts[tw[i]] == 0 { // noisy
				return i + 1
			}
		}
		return 0
	default: // AnchorLNN
		for i, id := range tw {
			if w.cwCounts[id] > 0 { // non-noisy
				return i
			}
		}
		return len(tw)
	}
}

// anchorAt restructures the windows around TW index idx per the resize
// policy and, for the Adaptive policy, marks the TW unbounded for the
// duration of the phase. It returns the global stream position of the
// anchor.
func (w *windows) anchorAt(idx int, resize ResizePolicy) int64 {
	pos := w.firstIndex + int64(idx)
	if w.policy != AdaptiveTW {
		// Constant TW: anchoring is reporting-only (used to identify where
		// the phase began); the windows are not restructured.
		return pos
	}
	// Drop TW elements left of the anchor.
	for i := 0; i < idx; i++ {
		w.removeTW(w.buf[w.head])
		w.head++
		w.twLen--
		w.firstIndex++
	}
	if resize == ResizeSlide {
		// Slide the TW right over the CW until the TW regains its nominal
		// size, shrinking the CW (it refills as new elements arrive).
		for w.twLen < w.twSize && w.cwLen() > 0 {
			moved := w.buf[w.head+w.twLen]
			w.removeCW(moved)
			w.addTW(moved)
			w.twLen++
		}
	}
	w.compact()
	w.anchored = true
	return pos
}

// clear flushes both windows (end of phase) and reinitializes the CW with
// the most recent skipFactor elements, per Figure 2's row G.
func (w *windows) clear(lastBatch []int32) {
	w.buf = w.buf[:0]
	w.head = 0
	w.twLen = 0
	w.cwDistinct = 0
	for _, id := range w.overlapIDs {
		w.overlapPos[id] = 0
	}
	w.overlapIDs = w.overlapIDs[:0]
	for i := range w.cwCounts {
		w.cwCounts[i] = 0
		w.twCounts[i] = 0
	}
	w.anchored = false
	w.filled = false
	w.firstIndex = w.nextIndex - int64(len(lastBatch))
	for _, id := range lastBatch {
		w.grow(id)
		w.buf = append(w.buf, id)
		w.addCW(id)
	}
}
