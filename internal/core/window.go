package core

// windows maintains the trailing window and current window over the
// element stream as one contiguous buffer: buf[head : head+twLen] is the
// TW and everything after it is the CW. Elements are interned small
// integers (the SetModel maps profile elements to dense IDs), so all
// multiset counters are plain slices and consuming one element costs O(1)
// array operations regardless of window sizes.
type windows struct {
	cwSize int
	twSize int
	policy TWPolicy

	buf        []int32
	head       int
	twLen      int
	firstIndex int64 // global stream index of buf[head]
	nextIndex  int64 // global stream index of the next element pushed

	cwCounts   []int32
	twCounts   []int32
	cwDistinct int
	overlap    int // distinct elements present in both windows

	anchored bool // AdaptiveTW: in phase, TW grows without bound
	filled   bool // both windows have filled since the last clear
}

func newWindows(cwSize, twSize int, policy TWPolicy) *windows {
	return &windows{cwSize: cwSize, twSize: twSize, policy: policy}
}

func (w *windows) cwLen() int { return len(w.buf) - w.head - w.twLen }

// grow ensures the counter slices cover id.
func (w *windows) grow(id int32) {
	for int(id) >= len(w.cwCounts) {
		w.cwCounts = append(w.cwCounts, 0)
		w.twCounts = append(w.twCounts, 0)
	}
}

func (w *windows) addCW(id int32) {
	w.cwCounts[id]++
	if w.cwCounts[id] == 1 {
		w.cwDistinct++
		if w.twCounts[id] > 0 {
			w.overlap++
		}
	}
}

func (w *windows) removeCW(id int32) {
	w.cwCounts[id]--
	if w.cwCounts[id] == 0 {
		w.cwDistinct--
		if w.twCounts[id] > 0 {
			w.overlap--
		}
	}
}

func (w *windows) addTW(id int32) {
	w.twCounts[id]++
	if w.twCounts[id] == 1 && w.cwCounts[id] > 0 {
		w.overlap++
	}
}

func (w *windows) removeTW(id int32) {
	w.twCounts[id]--
	if w.twCounts[id] == 0 && w.cwCounts[id] > 0 {
		w.overlap--
	}
}

// push consumes one element into the CW, shifting overflow into the TW and
// dropping from the TW's far end when the policy bounds it.
func (w *windows) push(id int32) {
	w.grow(id)
	w.buf = append(w.buf, id)
	w.nextIndex++
	w.addCW(id)
	if w.cwLen() > w.cwSize {
		// CW front crosses into the TW.
		moved := w.buf[w.head+w.twLen]
		w.removeCW(moved)
		w.addTW(moved)
		w.twLen++
	}
	if w.twLen > w.twSize && !w.anchored {
		dropped := w.buf[w.head]
		w.removeTW(dropped)
		w.head++
		w.twLen--
		w.firstIndex++
		w.compact()
	}
	if !w.filled && w.cwLen() == w.cwSize && w.twLen >= w.twSize {
		w.filled = true
	}
}

// compact reclaims the dead prefix of buf once it dominates the slice.
func (w *windows) compact() {
	if w.head >= 4096 && w.head > len(w.buf)/2 {
		n := copy(w.buf, w.buf[w.head:])
		w.buf = w.buf[:n]
		w.head = 0
	}
}

// ready reports whether similarity may be computed: both windows must have
// filled at least once since the last clear. (After an anchoring slide the
// CW may be temporarily short; per §5 similarity is still computed while
// it refills.)
func (w *windows) ready() bool { return w.filled }

// unweightedSimilarity returns the fraction of distinct CW elements also
// present in the TW.
func (w *windows) unweightedSimilarity() float64 {
	if w.cwDistinct == 0 {
		return 0
	}
	return float64(w.overlap) / float64(w.cwDistinct)
}

// weightedSimilarity returns the symmetric weighted-set similarity: the
// sum over elements of the minimum of the element's relative weight in
// each window. Only elements present in both windows contribute; the cost
// is O(distinct elements seen), which interning keeps small.
func (w *windows) weightedSimilarity() float64 {
	cwTotal, twTotal := w.cwLen(), w.twLen
	if cwTotal == 0 || twTotal == 0 {
		return 0
	}
	var sum float64
	for id, c := range w.cwCounts {
		if c == 0 {
			continue
		}
		tc := w.twCounts[id]
		if tc == 0 {
			continue
		}
		cwWeight := float64(c) / float64(cwTotal)
		twWeight := float64(tc) / float64(twTotal)
		if cwWeight < twWeight {
			sum += cwWeight
		} else {
			sum += twWeight
		}
	}
	return sum
}

// anchorIndex locates the anchor point within the TW under the given
// policy. Noisy elements are TW elements absent from the CW. The returned
// index is relative to the TW start (0 keeps the whole TW; twLen drops all
// of it).
func (w *windows) anchorIndex(policy AnchorPolicy) int {
	tw := w.buf[w.head : w.head+w.twLen]
	switch policy {
	case AnchorRN:
		for i := len(tw) - 1; i >= 0; i-- {
			if w.cwCounts[tw[i]] == 0 { // noisy
				return i + 1
			}
		}
		return 0
	default: // AnchorLNN
		for i, id := range tw {
			if w.cwCounts[id] > 0 { // non-noisy
				return i
			}
		}
		return len(tw)
	}
}

// anchorAt restructures the windows around TW index idx per the resize
// policy and, for the Adaptive policy, marks the TW unbounded for the
// duration of the phase. It returns the global stream position of the
// anchor.
func (w *windows) anchorAt(idx int, resize ResizePolicy) int64 {
	pos := w.firstIndex + int64(idx)
	if w.policy != AdaptiveTW {
		// Constant TW: anchoring is reporting-only (used to identify where
		// the phase began); the windows are not restructured.
		return pos
	}
	// Drop TW elements left of the anchor.
	for i := 0; i < idx; i++ {
		w.removeTW(w.buf[w.head])
		w.head++
		w.twLen--
		w.firstIndex++
	}
	if resize == ResizeSlide {
		// Slide the TW right over the CW until the TW regains its nominal
		// size, shrinking the CW (it refills as new elements arrive).
		for w.twLen < w.twSize && w.cwLen() > 0 {
			moved := w.buf[w.head+w.twLen]
			w.removeCW(moved)
			w.addTW(moved)
			w.twLen++
		}
	}
	w.compact()
	w.anchored = true
	return pos
}

// clear flushes both windows (end of phase) and reinitializes the CW with
// the most recent skipFactor elements, per Figure 2's row G.
func (w *windows) clear(lastBatch []int32) {
	w.buf = w.buf[:0]
	w.head = 0
	w.twLen = 0
	w.overlap = 0
	w.cwDistinct = 0
	for i := range w.cwCounts {
		w.cwCounts[i] = 0
		w.twCounts[i] = 0
	}
	w.anchored = false
	w.filled = false
	w.firstIndex = w.nextIndex - int64(len(lastBatch))
	for _, id := range lastBatch {
		w.grow(id)
		w.buf = append(w.buf, id)
		w.addCW(id)
	}
}
