package core

import (
	"sync"
	"sync/atomic"
)

// A SweepPool recycles the per-detector allocations of a configuration
// sweep: the two counter slices (sized to the trace's symbol-table
// cardinality) and the window ring buffer. A sweep constructs thousands
// of short-lived detectors over one trace; without pooling each one
// allocates and zeroes the same slices the previous one just dropped.
// The pool is safe for concurrent use by all sweep workers.
//
// Counter slices are zeroed on release, so acquisition is allocation- and
// clear-free. Hit/miss counts are exposed for telemetry.
type SweepPool struct {
	cardinality int
	counters    sync.Pool // *[]int32, len >= cardinality, zeroed
	windows     sync.Pool // *[]int32, len 0, spare capacity
	hits        atomic.Int64
	misses      atomic.Int64
}

// NewSweepPool returns a pool for detectors running over a trace with the
// given symbol-table cardinality.
func NewSweepPool(cardinality int) *SweepPool {
	return &SweepPool{cardinality: cardinality}
}

// Cardinality returns the counter-slice length the pool hands out.
func (p *SweepPool) Cardinality() int { return p.cardinality }

// Stats returns the cumulative buffer reuse counters.
func (p *SweepPool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// counterSlice returns a zeroed counter slice of length >= n.
func (p *SweepPool) counterSlice(n int) []int32 {
	if n < p.cardinality {
		n = p.cardinality
	}
	if v := p.counters.Get(); v != nil {
		s := *(v.(*[]int32))
		if len(s) >= n {
			p.hits.Add(1)
			return s
		}
	}
	p.misses.Add(1)
	return make([]int32, n)
}

// putCounterSlice zeroes and parks a counter slice for reuse.
func (p *SweepPool) putCounterSlice(s []int32) {
	if s == nil {
		return
	}
	for i := range s {
		s[i] = 0
	}
	p.counters.Put(&s)
}

// windowBuf returns an empty window buffer, reusing parked capacity.
func (p *SweepPool) windowBuf() []int32 {
	if v := p.windows.Get(); v != nil {
		p.hits.Add(1)
		return (*(v.(*[]int32)))[:0]
	}
	p.misses.Add(1)
	return nil
}

// putWindowBuf parks a window buffer's capacity for reuse.
func (p *SweepPool) putWindowBuf(s []int32) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	p.windows.Put(&s)
}
