package core

import "opd/internal/trace"

// Model is the framework's similarity model component. It consumes profile
// elements, maintains its window representation, and produces one
// similarity value per consumed group.
type Model interface {
	// UpdateWindows consumes the next skipFactor profile elements.
	UpdateWindows(elems []trace.Branch)
	// ComputeSimilarity returns the similarity of the current windows.
	// ok is false while the windows have not yet filled, during which the
	// detector outputs T without consulting the analyzer.
	ComputeSimilarity() (sim float64, ok bool)
	// AnchorTrailingWindow is invoked when a new phase begins. It returns
	// the global stream position at which the model judges the phase to
	// have started (the anchor point), and — for models with an adaptive
	// trailing window — restructures the windows around that point.
	AnchorTrailingWindow() int64
	// ClearWindows is invoked when a phase ends: the model flushes its
	// windows and restarts from the most recent elements.
	ClearWindows()
}

// SetModel is the paper's set-based similarity model family, covering both
// the unweighted (working set) and weighted variants over the Constant and
// Adaptive trailing-window policies.
type SetModel struct {
	kind   ModelKind
	anchor AnchorPolicy
	resize ResizePolicy
	win    *windows
	intern map[trace.Branch]int32
	last   []int32
}

var _ Model = (*SetModel)(nil)

// NewSetModel constructs a set model. cwSize and twSize are the window
// capacities (twSize is the Adaptive TW's initial and nominal size).
func NewSetModel(kind ModelKind, cwSize, twSize int, policy TWPolicy, anchor AnchorPolicy, resize ResizePolicy) *SetModel {
	return &SetModel{
		kind:   kind,
		anchor: anchor,
		resize: resize,
		win:    newWindows(cwSize, twSize, policy),
		intern: make(map[trace.Branch]int32),
	}
}

// id interns a profile element as a dense small integer, so the window
// machinery can use slice-indexed counters.
func (m *SetModel) id(e trace.Branch) int32 {
	if id, ok := m.intern[e]; ok {
		return id
	}
	id := int32(len(m.intern))
	m.intern[e] = id
	return id
}

// UpdateWindows pushes the batch into the windows and remembers it for
// window reinitialization at the next phase end.
func (m *SetModel) UpdateWindows(elems []trace.Branch) {
	m.last = m.last[:0]
	for _, e := range elems {
		id := m.id(e)
		m.win.push(id)
		m.last = append(m.last, id)
	}
}

// ComputeSimilarity implements Model.
func (m *SetModel) ComputeSimilarity() (float64, bool) {
	if !m.win.ready() {
		return 0, false
	}
	if m.kind == WeightedModel {
		return m.win.weightedSimilarity(), true
	}
	return m.win.unweightedSimilarity(), true
}

// AnchorTrailingWindow implements Model.
func (m *SetModel) AnchorTrailingWindow() int64 {
	idx := m.win.anchorIndex(m.anchor)
	return m.win.anchorAt(idx, m.resize)
}

// ClearWindows implements Model.
func (m *SetModel) ClearWindows() {
	m.win.clear(m.last)
}

// Consumed returns the number of elements the model has consumed; the
// anchor positions it reports are indices in this stream.
func (m *SetModel) Consumed() int64 { return m.win.nextIndex }
