package core

import "opd/internal/trace"

// Model is the framework's similarity model component. It consumes profile
// elements, maintains its window representation, and produces one
// similarity value per consumed group.
type Model interface {
	// UpdateWindows consumes the next skipFactor profile elements.
	UpdateWindows(elems []trace.Branch)
	// UpdateWindowsIDs consumes the next skipFactor elements in
	// pre-interned dense-ID form (trace.Interned). A run must feed the
	// model exclusively through one of the two entry points, and callers
	// must bind the stream's symbol table first when the model implements
	// InternBinder; RunTraceInterned handles both.
	UpdateWindowsIDs(ids []int32)
	// ComputeSimilarity returns the similarity of the current windows.
	// ok is false while the windows have not yet filled, during which the
	// detector outputs T without consulting the analyzer.
	ComputeSimilarity() (sim float64, ok bool)
	// AnchorTrailingWindow is invoked when a new phase begins. It returns
	// the global stream position at which the model judges the phase to
	// have started (the anchor point), and — for models with an adaptive
	// trailing window — restructures the windows around that point.
	AnchorTrailingWindow() int64
	// ClearWindows is invoked when a phase ends: the model flushes its
	// windows and restarts from the most recent elements.
	ClearWindows()
}

// InternBinder is implemented by models that accept a pre-interned
// trace's symbol table ahead of an ID-native run, letting them size
// internal state up-front and skip per-element interning.
type InternBinder interface {
	BindInterned(in *trace.Interned)
}

// SymbolDecoder is an embeddable helper for Branch-native custom models
// running under the interned fast path: BindInterned captures the
// stream's symbol table and Decode rehydrates an ID group into a
// reusable Branch buffer, so such models satisfy the ID entry point by
// delegating to their UpdateWindows.
type SymbolDecoder struct {
	syms []trace.Branch
	buf  []trace.Branch
}

// BindInterned implements InternBinder.
func (s *SymbolDecoder) BindInterned(in *trace.Interned) { s.syms = in.Symbols() }

// Decode maps an ID group back to profile elements. The returned slice is
// reused by the next call. It panics if no symbol table is bound — an
// ID-native run over an unbound model is a programming error.
func (s *SymbolDecoder) Decode(ids []int32) []trace.Branch {
	if s.syms == nil {
		panic("core: SymbolDecoder: Decode before BindInterned")
	}
	if cap(s.buf) < len(ids) {
		s.buf = make([]trace.Branch, len(ids))
	}
	s.buf = s.buf[:len(ids)]
	for i, id := range ids {
		s.buf[i] = s.syms[id]
	}
	return s.buf
}

// SetModel is the paper's set-based similarity model family, covering both
// the unweighted (working set) and weighted variants over the Constant and
// Adaptive trailing-window policies.
type SetModel struct {
	kind   ModelKind
	anchor AnchorPolicy
	resize ResizePolicy
	win    *windows
	intern map[trace.Branch]int32 // Branch path: lazily built per-model
	syms   []trace.Branch         // ID path: shared symbol table
	last   []int32                // most recent batch; may alias the shared ID stream
	own    []int32                // Branch path's owned backing for last
}

var _ Model = (*SetModel)(nil)
var _ InternBinder = (*SetModel)(nil)

// NewSetModel constructs a set model. cwSize and twSize are the window
// capacities (twSize is the Adaptive TW's initial and nominal size).
func NewSetModel(kind ModelKind, cwSize, twSize int, policy TWPolicy, anchor AnchorPolicy, resize ResizePolicy) *SetModel {
	return &SetModel{
		kind:   kind,
		anchor: anchor,
		resize: resize,
		win:    newWindows(cwSize, twSize, policy),
	}
}

// UsePool attaches a sweep pool: the window counter slices and ring
// buffer are acquired from it at BindInterned and returned by
// ReleaseBuffers. Attach before any elements are consumed.
func (m *SetModel) UsePool(p *SweepPool) { m.win.pool = p }

// BindInterned implements InternBinder: the shared symbol table replaces
// the per-model intern map, and the counter slices are sized once from
// the table's cardinality, so consuming an element is pure slice
// arithmetic — no hashing, no growth checks.
func (m *SetModel) BindInterned(in *trace.Interned) {
	m.syms = in.Symbols()
	m.win.ensureCap(len(m.syms))
}

// ReleaseBuffers returns pooled window buffers to the attached pool. The
// model must not consume further elements afterwards.
func (m *SetModel) ReleaseBuffers() { m.win.release() }

// id interns a profile element as a dense small integer, so the window
// machinery can use slice-indexed counters.
func (m *SetModel) id(e trace.Branch) int32 {
	id, ok := m.intern[e]
	if !ok {
		if m.intern == nil {
			m.intern = make(map[trace.Branch]int32)
		}
		id = int32(len(m.intern))
		m.intern[e] = id
	}
	return id
}

// lookupID resolves an element's dense ID without assigning one: via
// the intern map when the model built one (Branch-path runs, restored
// snapshots), else by scanning the bound table (tiny, cold paths only).
func (m *SetModel) lookupID(e trace.Branch) (int32, bool) {
	if m.intern != nil {
		id, ok := m.intern[e]
		return id, ok
	}
	for i, s := range m.syms {
		if s == e {
			return int32(i), true
		}
	}
	return 0, false
}

// UpdateWindows pushes the batch into the windows and remembers it for
// window reinitialization at the next phase end.
func (m *SetModel) UpdateWindows(elems []trace.Branch) {
	m.own = m.own[:0]
	for _, e := range elems {
		id := m.id(e)
		m.win.push(id)
		m.own = append(m.own, id)
	}
	m.last = m.own
}

// UpdateWindowsIDs implements the interned fast path: the batch is
// already in dense-ID form, so each element is one bounds-check-free
// counter update. Requires BindInterned (IDs must be covered by the
// up-front counter sizing); unbound models fall back to the growing push.
//
// The batch is aliased, not copied: its only later reader is
// ClearWindows, which runs synchronously within the same group, before
// any caller could reuse the backing array. (The Branch entry point must
// not be mixed into the same run — see Model.)
func (m *SetModel) UpdateWindowsIDs(ids []int32) {
	m.last = ids
	if m.syms == nil {
		for _, id := range ids {
			m.win.push(id)
		}
		return
	}
	for _, id := range ids {
		m.win.pushID(id)
	}
}

// ComputeSimilarity implements Model.
func (m *SetModel) ComputeSimilarity() (float64, bool) {
	if !m.win.ready() {
		return 0, false
	}
	if m.kind == WeightedModel {
		return m.win.weightedSimilarity(), true
	}
	return m.win.unweightedSimilarity(), true
}

// AnchorTrailingWindow implements Model.
func (m *SetModel) AnchorTrailingWindow() int64 {
	idx := m.win.anchorIndex(m.anchor)
	return m.win.anchorAt(idx, m.resize)
}

// ClearWindows implements Model.
func (m *SetModel) ClearWindows() {
	m.win.clear(m.last)
}

// Consumed returns the number of elements the model has consumed; the
// anchor positions it reports are indices in this stream.
func (m *SetModel) Consumed() int64 { return m.win.nextIndex }
