package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"opd/internal/interval"
	"opd/internal/trace"
)

// This file implements detector checkpoint/restore: a versioned,
// checksummed binary encoding of the complete detector state — window
// contents, intern table, adaptive-TW anchor state, analyzer running
// statistics, phase records, and the ProcessBatch pending partial-group
// buffer — with the invariant that restore-then-continue is bit-identical
// to an uninterrupted run. The durability layer (internal/durable,
// internal/serve) persists these snapshots so live sessions survive a
// process crash or redeploy, echoing how prior phase-tracking hardware
// persisted compact per-interval signatures across runs.
//
// Snapshot layout (version 1, little-endian, varint-packed):
//
//	[8]  magic "OPDDETS1"
//	u16  version
//	     config    cw/tw/skip uvarints; tw-policy, anchor, resize, model,
//	               analyzer bytes; analyzer param f64
//	     detector  flag byte (finished/inPhase/haveSim/state); stream
//	               counters; pending group; raw + adjusted phase lists
//	     analyzer  running statistics (Average count+sum; Threshold none)
//	     model     intern table (id -> Branch); window buffer (dense IDs);
//	               TW length, window stream indices, anchored/filled flags;
//	               overlap set in maintained order
//	u32  CRC-32C over every preceding byte
//
// The overlap set is persisted verbatim (not recomputed) because weighted
// similarity sums float64 contributions in the set's maintained order:
// reproducing the bits of every future similarity value requires
// reproducing that order exactly. The window counter slices, by contrast,
// are pure functions of the window buffer and are rebuilt on restore.

// SnapshotVersion is the current detector snapshot encoding version.
const SnapshotVersion = 1

var snapshotMagic = [8]byte{'O', 'P', 'D', 'D', 'E', 'T', 'S', '1'}

// ErrSnapshot reports a detector snapshot that cannot be restored:
// damaged bytes (bad magic, failed checksum, malformed fields) or an
// unsupported version. All Restore errors wrap it.
var ErrSnapshot = errors.New("core: invalid detector snapshot")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// detector flag bits.
const (
	snapFinished = 1 << iota
	snapInPhase
	snapHaveSim
	snapStateP
)

// window flag bits.
const (
	snapAnchored = 1 << iota
	snapFilled
)

// Snapshot encodes the detector's complete state. It is supported for
// detectors assembled from the built-in components (SetModel with a
// Threshold or Average analyzer — everything Config.New produces);
// detectors with custom models or analyzers return an error. The
// detector's telemetry probe and phase hooks are not part of the state:
// the caller re-attaches them after Restore.
func (d *Detector) Snapshot() ([]byte, error) {
	sm, ok := d.model.(*SetModel)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: unsupported model %T", d.model)
	}
	cfg := Config{
		CWSize:     sm.win.cwSize,
		TWSize:     sm.win.twSize,
		SkipFactor: d.skip,
		TW:         sm.win.policy,
		Anchor:     sm.anchor,
		Resize:     sm.resize,
		Model:      sm.kind,
	}
	switch a := d.analyzer.(type) {
	case *Threshold:
		cfg.Analyzer, cfg.Param = ThresholdAnalyzer, a.T
	case *Average:
		cfg.Analyzer, cfg.Param = AverageAnalyzer, a.Delta
	default:
		return nil, fmt.Errorf("core: snapshot: unsupported analyzer %T", d.analyzer)
	}

	var w snapWriter
	w.buf = append(w.buf, snapshotMagic[:]...)
	w.u16(SnapshotVersion)

	// Config.
	w.uvarint(uint64(cfg.CWSize))
	w.uvarint(uint64(cfg.TWSize))
	w.uvarint(uint64(cfg.SkipFactor))
	w.u8(uint8(cfg.TW))
	w.u8(uint8(cfg.Anchor))
	w.u8(uint8(cfg.Resize))
	w.u8(uint8(cfg.Model))
	w.u8(uint8(cfg.Analyzer))
	w.f64(cfg.Param)

	// Detector.
	var flags byte
	if d.finished {
		flags |= snapFinished
	}
	if d.inPhase {
		flags |= snapInPhase
	}
	if d.haveSim {
		flags |= snapHaveSim
	}
	if d.state.IsPhase() {
		flags |= snapStateP
	}
	w.u8(flags)
	w.varint(d.n)
	w.varint(d.curStart)
	w.varint(d.curAdjStart)
	w.varint(d.simCount)
	w.varint(d.lastFlipAt)
	w.f64(d.lastSim)
	// The pending partial group persists in Branch form regardless of
	// which entry point buffered it, keeping one layout for both: an
	// ID-form group decodes through the bound table here and is adopted
	// back into ID form by the first ProcessBatchIDs after restore.
	if len(d.pendingIDs) > 0 && sm.syms == nil {
		return nil, errors.New("core: snapshot: pending ID group without a bound symbol table")
	}
	w.uvarint(uint64(len(d.pending) + len(d.pendingIDs)))
	for _, b := range d.pending {
		w.uvarint(uint64(b))
	}
	for _, id := range d.pendingIDs {
		w.uvarint(uint64(sm.syms[id]))
	}
	w.intervals(d.phases)
	w.intervals(d.adjPhases)

	// Analyzer running statistics.
	if avg, ok := d.analyzer.(*Average); ok {
		w.varint(avg.count)
		w.f64(avg.sum)
	}

	// Model: intern table, window buffer, overlap set.
	table := sm.syms
	if table == nil {
		table = make([]trace.Branch, len(sm.intern))
		for b, id := range sm.intern {
			table[id] = b
		}
	}
	w.uvarint(uint64(len(table)))
	for _, b := range table {
		w.uvarint(uint64(b))
	}
	win := sm.win
	live := win.buf[win.head:]
	w.uvarint(uint64(len(live)))
	for _, id := range live {
		w.uvarint(uint64(id))
	}
	w.uvarint(uint64(win.twLen))
	w.varint(win.firstIndex)
	w.varint(win.nextIndex)
	var wflags byte
	if win.anchored {
		wflags |= snapAnchored
	}
	if win.filled {
		wflags |= snapFilled
	}
	w.u8(wflags)
	w.uvarint(uint64(len(win.overlapIDs)))
	for _, id := range win.overlapIDs {
		w.uvarint(uint64(id))
	}

	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(w.buf, castagnoli))
	return w.buf, nil
}

// RestoreDetector rebuilds a detector (and the configuration it was
// built from) out of a Snapshot. The restored detector continues the
// stream exactly where the snapshot was taken: every subsequent
// similarity value, state flip, phase boundary, and event is bit-identical
// to the uninterrupted run. Damaged or truncated snapshots return an
// error wrapping ErrSnapshot — never a panic — and allocation is bounded
// before the checksum has been verified.
func RestoreDetector(data []byte) (*Detector, Config, error) {
	var cfg Config
	if len(data) < len(snapshotMagic)+2+4 {
		return nil, cfg, fmt.Errorf("%w: %d bytes is too short", ErrSnapshot, len(data))
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return nil, cfg, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, castagnoli); got != want {
		return nil, cfg, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrSnapshot, got, want)
	}
	r := &snapReader{buf: body, off: 8}
	if v := r.u16(); v != SnapshotVersion {
		return nil, cfg, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, v)
	}

	// Config.
	cfg = Config{
		CWSize:     int(r.uvarint()),
		TWSize:     int(r.uvarint()),
		SkipFactor: int(r.uvarint()),
		TW:         TWPolicy(r.u8()),
		Anchor:     AnchorPolicy(r.u8()),
		Resize:     ResizePolicy(r.u8()),
		Model:      ModelKind(r.u8()),
		Analyzer:   AnalyzerKind(r.u8()),
		Param:      r.f64(),
	}
	if r.err != nil {
		return nil, cfg, r.fail("config")
	}
	d, err := cfg.New()
	if err != nil {
		return nil, cfg, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}

	// Detector.
	flags := r.u8()
	d.finished = flags&snapFinished != 0
	d.inPhase = flags&snapInPhase != 0
	d.haveSim = flags&snapHaveSim != 0
	d.state = Transition
	if flags&snapStateP != 0 {
		d.state = InPhase
	}
	d.n = r.varint()
	d.curStart = r.varint()
	d.curAdjStart = r.varint()
	d.simCount = r.varint()
	d.lastFlipAt = r.varint()
	d.lastSim = r.f64()
	nPending := r.uvarint()
	if r.err == nil && nPending >= uint64(d.skip) {
		return nil, cfg, fmt.Errorf("%w: pending group of %d with skip factor %d", ErrSnapshot, nPending, d.skip)
	}
	d.pending = make([]trace.Branch, 0, capAlloc(nPending))
	for i := uint64(0); i < nPending && r.err == nil; i++ {
		d.pending = append(d.pending, trace.Branch(r.uvarint()))
	}
	d.phases = r.intervals()
	d.adjPhases = r.intervals()
	if r.err != nil {
		return nil, cfg, r.fail("detector state")
	}

	// Analyzer running statistics.
	if avg, ok := d.analyzer.(*Average); ok {
		avg.count = r.varint()
		avg.sum = r.f64()
	}

	// Model.
	sm := d.sm
	nTable := r.uvarint()
	table := make([]trace.Branch, 0, capAlloc(nTable))
	for i := uint64(0); i < nTable && r.err == nil; i++ {
		table = append(table, trace.Branch(r.uvarint()))
	}
	win := sm.win
	nBuf := r.uvarint()
	win.buf = make([]int32, 0, capAlloc(nBuf))
	for i := uint64(0); i < nBuf && r.err == nil; i++ {
		id := r.uvarint()
		if id >= nTable {
			return nil, cfg, fmt.Errorf("%w: window element id %d outside intern table of %d", ErrSnapshot, id, nTable)
		}
		win.buf = append(win.buf, int32(id))
	}
	twLen := r.uvarint()
	win.firstIndex = r.varint()
	win.nextIndex = r.varint()
	wflags := r.u8()
	nOverlap := r.uvarint()
	overlap := make([]int32, 0, capAlloc(nOverlap))
	for i := uint64(0); i < nOverlap && r.err == nil; i++ {
		id := r.uvarint()
		if id >= nTable {
			return nil, cfg, fmt.Errorf("%w: overlap id %d outside intern table of %d", ErrSnapshot, id, nTable)
		}
		overlap = append(overlap, int32(id))
	}
	if r.err != nil {
		return nil, cfg, r.fail("model state")
	}
	if r.off != len(r.buf) {
		return nil, cfg, fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, len(r.buf)-r.off)
	}
	if twLen > uint64(len(win.buf)) {
		return nil, cfg, fmt.Errorf("%w: TW length %d exceeds window buffer %d", ErrSnapshot, twLen, len(win.buf))
	}

	// Rebuild the model's derived state: the intern map from the table,
	// the counter slices from the window buffer segments, and the overlap
	// index from the persisted set.
	sm.intern = make(map[trace.Branch]int32, len(table))
	for id, b := range table {
		if _, dup := sm.intern[b]; dup {
			return nil, cfg, fmt.Errorf("%w: duplicate intern table entry %v", ErrSnapshot, b)
		}
		sm.intern[b] = int32(id)
	}
	win.head = 0
	win.twLen = int(twLen)
	win.anchored = wflags&snapAnchored != 0
	win.filled = wflags&snapFilled != 0
	win.ensureCap(len(table))
	for _, id := range win.buf[:twLen] {
		win.twCounts[id]++
	}
	for _, id := range win.buf[twLen:] {
		win.cwCounts[id]++
	}
	win.overlapIDs = overlap
	for i, id := range overlap {
		if win.overlapPos[id] != 0 {
			return nil, cfg, fmt.Errorf("%w: duplicate overlap id %d", ErrSnapshot, id)
		}
		win.overlapPos[id] = int32(i + 1)
	}
	// Coherence: the overlap set must be exactly the ids present in both
	// windows, and cwDistinct the count of distinct CW ids.
	for id := range table {
		inBoth := win.cwCounts[id] > 0 && win.twCounts[id] > 0
		if inBoth != (win.overlapPos[id] != 0) {
			return nil, cfg, fmt.Errorf("%w: overlap set inconsistent at id %d", ErrSnapshot, id)
		}
		if win.cwCounts[id] > 0 {
			win.cwDistinct++
		}
	}
	return d, cfg, nil
}

// capAlloc bounds a pre-allocation driven by an untrusted count: small
// counts allocate exactly, absurd ones start small and grow by append.
func capAlloc(n uint64) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return int(n)
}

// snapWriter appends the snapshot's primitive encodings.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) u8(b uint8)   { w.buf = append(w.buf, b) }
func (w *snapWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *snapWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *snapWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}
func (w *snapWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *snapWriter) intervals(ivs []interval.Interval) {
	w.uvarint(uint64(len(ivs)))
	for _, iv := range ivs {
		w.varint(iv.Start)
		w.varint(iv.End)
	}
}

// snapReader decodes the snapshot's primitive encodings, latching the
// first failure so callers can decode a whole section and check once.
type snapReader struct {
	buf []byte
	off int
	err error
}

func (r *snapReader) fail(section string) error {
	return fmt.Errorf("%w: decoding %s: %v", ErrSnapshot, section, r.err)
}

func (r *snapReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = errors.New("unexpected end of snapshot")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *snapReader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.off+2 > len(r.buf) {
		r.err = errors.New("unexpected end of snapshot")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = errors.New("malformed uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = errors.New("malformed varint")
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = errors.New("unexpected end of snapshot")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *snapReader) intervals() []interval.Interval {
	n := r.uvarint()
	ivs := make([]interval.Interval, 0, capAlloc(n))
	for i := uint64(0); i < n && r.err == nil; i++ {
		start := r.varint()
		end := r.varint()
		ivs = append(ivs, interval.Interval{Start: start, End: end})
	}
	return ivs
}
