package core

import (
	"opd/internal/interval"
	"opd/internal/trace"
)

// This file implements the paper's first future-work extension (§7):
// detecting phases that repeat themselves. At the end of each phase the
// model supplies a signature — the set of distinct profile elements the
// phase touched — and a Tracker matches it against previously seen phases
// so a dynamic optimizer can recognize a recurrence and reapply (or avoid)
// an earlier optimization decision.

// Signaturer is the optional model capability of producing the current
// phase's signature. SetModel implements it; custom models may too.
type Signaturer interface {
	// PhaseSignature returns the distinct profile elements of the phase
	// currently held in the model's windows. Called at phase end, before
	// the windows are cleared.
	PhaseSignature() []trace.Branch
}

// PhaseSignature implements Signaturer: the distinct elements of the
// trailing window. Under the Adaptive TW policy the TW holds (a
// representation of) the whole phase, making this the phase's working
// set; the current window is deliberately excluded because at a phase end
// it already holds the *next* behaviour's elements, which would pollute
// the signature. When the TW is empty (immediately after a flush), the CW
// is used as the fallback.
func (m *SetModel) PhaseSignature() []trace.Branch {
	useTW := m.win.twLen > 0
	if m.syms != nil {
		// ID-native run: the shared symbol table maps IDs back to elements.
		sig := make([]trace.Branch, 0, 16)
		counts := m.win.cwCounts
		if useTW {
			counts = m.win.twCounts
		}
		for id, e := range m.syms {
			if id < len(counts) && counts[id] > 0 {
				sig = append(sig, e)
			}
		}
		return sig
	}
	sig := make([]trace.Branch, 0, len(m.intern))
	for e, id := range m.intern {
		if int(id) >= len(m.win.cwCounts) {
			continue
		}
		if (useTW && m.win.twCounts[id] > 0) || (!useTW && m.win.cwCounts[id] > 0) {
			sig = append(sig, e)
		}
	}
	return sig
}

// A PhaseRecord describes one completed phase occurrence.
type PhaseRecord struct {
	// Interval is the phase's extent, with anchor-corrected start.
	Interval interval.Interval
	// ID identifies the recurring phase this occurrence belongs to; the
	// first occurrence of each distinct behaviour allocates a fresh ID.
	ID int
	// Repeat is true when the phase matched a previously seen signature.
	Repeat bool
	// Similarity is the Jaccard similarity to the matched signature (1.0
	// for a fresh phase matching only itself).
	Similarity float64
}

// Tracker matches phase signatures against previously observed ones by
// Jaccard similarity over element sets.
type Tracker struct {
	threshold float64
	known     []map[trace.Branch]struct{}
}

// NewTracker returns a tracker that considers two phases the same when
// the Jaccard similarity of their signatures reaches threshold.
func NewTracker(threshold float64) *Tracker {
	return &Tracker{threshold: threshold}
}

// KnownPhases returns how many distinct phase behaviours have been seen.
func (t *Tracker) KnownPhases() int { return len(t.known) }

// Match reports the best-matching known phase for a signature without
// registering anything: the recognition query an optimizer issues at
// phase *start*. ok is false when no known phase reaches the threshold.
func (t *Tracker) Match(sig []trace.Branch) (id int, similarity float64, ok bool) {
	set := make(map[trace.Branch]struct{}, len(sig))
	for _, e := range sig {
		set[e] = struct{}{}
	}
	bestID, bestSim := -1, 0.0
	for i, known := range t.known {
		inter := 0
		for e := range set {
			if _, hit := known[e]; hit {
				inter++
			}
		}
		union := len(set) + len(known) - inter
		if union == 0 {
			continue
		}
		if sim := float64(inter) / float64(union); sim > bestSim {
			bestID, bestSim = i, sim
		}
	}
	if bestID >= 0 && bestSim >= t.threshold {
		return bestID, bestSim, true
	}
	return -1, bestSim, false
}

// Observe matches a signature against the known phases. On a match it
// returns the existing ID with repeat=true and folds the signature into
// the stored one (the union, so signatures stabilize over occurrences);
// otherwise it registers a new phase ID.
func (t *Tracker) Observe(sig []trace.Branch) (id int, repeat bool, similarity float64) {
	set := make(map[trace.Branch]struct{}, len(sig))
	for _, e := range sig {
		set[e] = struct{}{}
	}
	bestID, bestSim := -1, 0.0
	for i, known := range t.known {
		inter := 0
		for e := range set {
			if _, ok := known[e]; ok {
				inter++
			}
		}
		union := len(set) + len(known) - inter
		if union == 0 {
			continue
		}
		sim := float64(inter) / float64(union)
		if sim > bestSim {
			bestID, bestSim = i, sim
		}
	}
	if bestID >= 0 && bestSim >= t.threshold {
		for e := range set {
			t.known[bestID][e] = struct{}{}
		}
		return bestID, true, bestSim
	}
	t.known = append(t.known, set)
	return len(t.known) - 1, false, bestSim
}

// RecurringDetector couples a Detector with a Tracker, producing a stream
// of identified phase occurrences.
type RecurringDetector struct {
	*Detector
	tracker *Tracker
	records []PhaseRecord
}

// NewRecurringDetector wraps a detector configuration with phase identity
// tracking. matchThreshold is the Jaccard similarity at which two phases
// count as the same behaviour.
func NewRecurringDetector(cfg Config, matchThreshold float64) (*RecurringDetector, error) {
	d, err := cfg.New()
	if err != nil {
		return nil, err
	}
	r := &RecurringDetector{Detector: d, tracker: NewTracker(matchThreshold)}
	d.SetPhaseEndHook(func(iv interval.Interval, sig []trace.Branch) {
		id, repeat, sim := r.tracker.Observe(sig)
		r.records = append(r.records, PhaseRecord{Interval: iv, ID: id, Repeat: repeat, Similarity: sim})
	})
	return r, nil
}

// Records returns the identified phase occurrences, in order. Valid after
// Finish.
func (r *RecurringDetector) Records() []PhaseRecord { return r.records }

// DistinctPhases returns how many distinct phase behaviours were seen.
func (r *RecurringDetector) DistinctPhases() int { return r.tracker.KnownPhases() }
