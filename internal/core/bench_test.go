package core

import (
	"testing"

	"opd/internal/trace"
)

// benchStream is a deterministic 100K-element stream over 24 sites with
// phase-like runs.
func benchStream() trace.Trace {
	return randomStream(7, 100000)
}

func benchmarkWindowSimilarity(b *testing.B, weighted bool) {
	stream := benchStream()
	m := NewSetModel(UnweightedModel, 1000, 1000, ConstantTW, AnchorRN, ResizeSlide)
	if weighted {
		m = NewSetModel(WeightedModel, 1000, 1000, ConstantTW, AnchorRN, ResizeSlide)
	}
	buf := make([]trace.Branch, 1)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range stream {
			buf[0] = e
			m.UpdateWindows(buf)
			m.ComputeSimilarity()
		}
	}
}

// BenchmarkSimilarityIncremental measures the maintained-counter design:
// O(1) per element for the unweighted model.
func BenchmarkSimilarityIncrementalUnweighted(b *testing.B) {
	benchmarkWindowSimilarity(b, false)
}

// BenchmarkSimilarityIncrementalWeighted measures the weighted model,
// whose per-step cost is O(distinct sites).
func BenchmarkSimilarityIncrementalWeighted(b *testing.B) {
	benchmarkWindowSimilarity(b, true)
}

// BenchmarkSimilarityNaiveRecompute is the ablation baseline for the
// incremental design: rebuild both window multisets from scratch at every
// step, the way a direct transcription of the similarity definitions
// would. The incremental benchmarks above beat this by orders of
// magnitude at realistic window sizes.
func BenchmarkSimilarityNaiveRecompute(b *testing.B) {
	stream := benchStream()
	const cw, tw = 1000, 1000
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for pos := cw + tw; pos < len(stream); pos += 997 { // sampled: the full loop is intractable
			twCounts := map[trace.Branch]int{}
			cwCounts := map[trace.Branch]int{}
			for _, e := range stream[pos-cw-tw : pos-cw] {
				twCounts[e]++
			}
			for _, e := range stream[pos-cw : pos] {
				cwCounts[e]++
			}
			overlap := 0
			for e := range cwCounts {
				if twCounts[e] > 0 {
					overlap++
				}
			}
			sink += float64(overlap) / float64(len(cwCounts))
		}
		_ = sink
	}
}

// BenchmarkDetectorProcessSingle measures the per-element streaming entry
// point (Process) as used by live instrumentation.
func BenchmarkDetectorProcessSingle(b *testing.B) {
	stream := benchStream()
	d := Config{CWSize: 1000, TW: AdaptiveTW, Model: UnweightedModel,
		Analyzer: ThresholdAnalyzer, Param: 0.6}.MustNew()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(stream[i%len(stream)])
	}
}
