package core

import (
	"testing"

	"opd/internal/trace"
)

// benchStream is a deterministic 100K-element stream over 24 sites with
// phase-like runs.
func benchStream() trace.Trace {
	return randomStream(7, 100000)
}

func benchmarkWindowSimilarity(b *testing.B, weighted bool) {
	stream := benchStream()
	m := NewSetModel(UnweightedModel, 1000, 1000, ConstantTW, AnchorRN, ResizeSlide)
	if weighted {
		m = NewSetModel(WeightedModel, 1000, 1000, ConstantTW, AnchorRN, ResizeSlide)
	}
	buf := make([]trace.Branch, 1)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range stream {
			buf[0] = e
			m.UpdateWindows(buf)
			m.ComputeSimilarity()
		}
	}
}

// BenchmarkSimilarityIncremental measures the maintained-counter design:
// O(1) per element for the unweighted model.
func BenchmarkSimilarityIncrementalUnweighted(b *testing.B) {
	benchmarkWindowSimilarity(b, false)
}

// BenchmarkSimilarityIncrementalWeighted measures the weighted model,
// whose per-step cost is O(distinct sites).
func BenchmarkSimilarityIncrementalWeighted(b *testing.B) {
	benchmarkWindowSimilarity(b, true)
}

// BenchmarkSimilarityNaiveRecompute is the ablation baseline for the
// incremental design: rebuild both window multisets from scratch at every
// step, the way a direct transcription of the similarity definitions
// would. The incremental benchmarks above beat this by orders of
// magnitude at realistic window sizes.
func BenchmarkSimilarityNaiveRecompute(b *testing.B) {
	stream := benchStream()
	const cw, tw = 1000, 1000
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for pos := cw + tw; pos < len(stream); pos += 997 { // sampled: the full loop is intractable
			twCounts := map[trace.Branch]int{}
			cwCounts := map[trace.Branch]int{}
			for _, e := range stream[pos-cw-tw : pos-cw] {
				twCounts[e]++
			}
			for _, e := range stream[pos-cw : pos] {
				cwCounts[e]++
			}
			overlap := 0
			for e := range cwCounts {
				if twCounts[e] > 0 {
					overlap++
				}
			}
			sink += float64(overlap) / float64(len(cwCounts))
		}
		_ = sink
	}
}

// hiCardStream is a deterministic 100K-element stream over ~8000 sites:
// the regime where per-element map interning leaves cache and dominates
// the unweighted detector's O(1) window arithmetic.
func hiCardStream() trace.Trace {
	rng := int64(11)
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	var tr trace.Trace
	for len(tr) < 100000 {
		site := next(8000)
		run := next(12) + 1
		for i := 0; i < run && len(tr) < 100000; i++ {
			tr = append(tr, el(site))
		}
	}
	return tr
}

// benchmarkUpdateWindowsPath drives a whole-trace detector run through
// either the legacy map-interning path or the dense-ID fast path, so the
// two benchmarks isolate exactly the cost the shared-intern engine
// removes: one hash lookup per element (interning for the ID path is done
// outside the timed region, as the sweep engine amortizes it).
func benchmarkUpdateWindowsPath(b *testing.B, interned bool, kind ModelKind) {
	benchmarkUpdateWindowsPathStream(b, benchStream(), interned, kind)
}

func benchmarkUpdateWindowsPathStream(b *testing.B, stream trace.Trace, interned bool, kind ModelKind) {
	in := trace.Intern(stream)
	cfg := Config{CWSize: 1000, TW: ConstantTW, Model: kind,
		Analyzer: ThresholdAnalyzer, Param: 0.6}
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cfg.MustNew()
		if interned {
			RunTraceInterned(d, in)
		} else {
			RunTrace(d, stream)
		}
	}
}

// BenchmarkUpdateWindowsMapPath is the legacy path: the model interns
// every element through its private map[trace.Branch]int32.
func BenchmarkUpdateWindowsMapPath(b *testing.B) {
	benchmarkUpdateWindowsPath(b, false, UnweightedModel)
}

// BenchmarkUpdateWindowsIDPath consumes the pre-interned ID stream:
// no hashing, counters sized up-front, growth checks gone.
func BenchmarkUpdateWindowsIDPath(b *testing.B) {
	benchmarkUpdateWindowsPath(b, true, UnweightedModel)
}

// BenchmarkUpdateWindowsMapPathWeighted / IDPathWeighted repeat the
// comparison for the weighted model, whose similarity step dilutes (but
// does not hide) the interning cost.
func BenchmarkUpdateWindowsMapPathWeighted(b *testing.B) {
	benchmarkUpdateWindowsPath(b, false, WeightedModel)
}

func BenchmarkUpdateWindowsIDPathWeighted(b *testing.B) {
	benchmarkUpdateWindowsPath(b, true, WeightedModel)
}

// BenchmarkUpdateWindowsMapPathHiCard / IDPathHiCard repeat the unweighted
// comparison over a stream with thousands of distinct sites — the
// map-lookup-bound regime the shared-intern engine targets.
func BenchmarkUpdateWindowsMapPathHiCard(b *testing.B) {
	benchmarkUpdateWindowsPathStream(b, hiCardStream(), false, UnweightedModel)
}

func BenchmarkUpdateWindowsIDPathHiCard(b *testing.B) {
	benchmarkUpdateWindowsPathStream(b, hiCardStream(), true, UnweightedModel)
}

// BenchmarkDetectorProcessSingle measures the per-element streaming entry
// point (Process) as used by live instrumentation.
func BenchmarkDetectorProcessSingle(b *testing.B) {
	stream := benchStream()
	d := Config{CWSize: 1000, TW: AdaptiveTW, Model: UnweightedModel,
		Analyzer: ThresholdAnalyzer, Param: 0.6}.MustNew()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(stream[i%len(stream)])
	}
}
