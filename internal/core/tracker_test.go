package core

import (
	"testing"

	"opd/internal/trace"
)

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker(0.5)
	sigA := []trace.Branch{el(1), el(2), el(3), el(4)}
	sigB := []trace.Branch{el(10), el(11), el(12), el(13)}
	sigA2 := []trace.Branch{el(1), el(2), el(3), el(5)} // Jaccard 3/5 = 0.6 vs A

	id0, repeat, _ := tr.Observe(sigA)
	if repeat || id0 != 0 {
		t.Fatalf("first phase: id=%d repeat=%v", id0, repeat)
	}
	id1, repeat, _ := tr.Observe(sigB)
	if repeat || id1 != 1 {
		t.Fatalf("second distinct phase: id=%d repeat=%v", id1, repeat)
	}
	id2, repeat, sim := tr.Observe(sigA2)
	if !repeat || id2 != 0 {
		t.Fatalf("recurrence not matched: id=%d repeat=%v sim=%f", id2, repeat, sim)
	}
	if sim < 0.59 || sim > 0.61 {
		t.Errorf("similarity = %f, want 0.6", sim)
	}
	if tr.KnownPhases() != 2 {
		t.Errorf("known phases = %d, want 2", tr.KnownPhases())
	}
	// The stored signature is the union, so {1,2,3,4,5} now; observing
	// {1,2,3} has Jaccard 3/5 = 0.6 >= 0.5.
	if id, repeat, _ := tr.Observe([]trace.Branch{el(1), el(2), el(3)}); !repeat || id != 0 {
		t.Errorf("union-folded signature not matched: id=%d repeat=%v", id, repeat)
	}
}

func TestTrackerBelowThresholdIsNewPhase(t *testing.T) {
	tr := NewTracker(0.9)
	tr.Observe([]trace.Branch{el(1), el(2)})
	id, repeat, _ := tr.Observe([]trace.Branch{el(1), el(3)}) // Jaccard 1/3
	if repeat || id != 1 {
		t.Errorf("low-similarity phase matched: id=%d repeat=%v", id, repeat)
	}
}

func TestSetModelPhaseSignature(t *testing.T) {
	m := NewSetModel(UnweightedModel, 3, 3, AdaptiveTW, AnchorRN, ResizeSlide)
	m.UpdateWindows([]trace.Branch{el(1), el(2), el(1), el(2), el(1), el(2)})
	sig := m.PhaseSignature()
	if len(sig) != 2 {
		t.Fatalf("signature = %v, want the two distinct elements", sig)
	}
	seen := map[trace.Branch]bool{}
	for _, e := range sig {
		seen[e] = true
	}
	if !seen[el(1)] || !seen[el(2)] {
		t.Errorf("signature contents wrong: %v", sig)
	}
	// After a clear, only the reinitialized CW contributes.
	m.ClearWindows()
	if sig := m.PhaseSignature(); len(sig) == 0 {
		t.Error("signature after clear should include the reinitialized CW")
	}
}

// recurringTrace alternates two behaviours: A B A B A, with glue between.
func recurringTrace() trace.Trace {
	var tr trace.Trace
	addRun := func(off, n int) {
		for i := 0; i < n; i++ {
			tr = append(tr, el(off))
		}
	}
	for rep := 0; rep < 5; rep++ {
		if rep%2 == 0 {
			addRun(1, 120)
			addRun(2, 120)
		} else {
			addRun(10, 120)
			addRun(11, 120)
		}
	}
	return tr
}

func TestRecurringDetectorIdentifiesRepeats(t *testing.T) {
	rd, err := NewRecurringDetector(Config{
		CWSize: 16, TW: AdaptiveTW, Model: UnweightedModel,
		Analyzer: ThresholdAnalyzer, Param: 0.6,
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	RunTrace(rd.Detector, recurringTrace())
	records := rd.Records()
	if len(records) < 4 {
		t.Fatalf("records = %d, want one per stable region (>= 4)", len(records))
	}
	// Two distinct behaviours alternate; the tracker must identify far
	// fewer distinct phases than occurrences.
	if rd.DistinctPhases() >= len(records) {
		t.Errorf("distinct phases = %d of %d occurrences; no recurrence detected",
			rd.DistinctPhases(), len(records))
	}
	repeats := 0
	for _, r := range records {
		if r.Repeat {
			repeats++
		}
	}
	if repeats == 0 {
		t.Error("no repeats flagged")
	}
	// Records must align with the detector's adjusted phases.
	adj := rd.AdjustedPhases()
	if len(records) != len(adj) {
		t.Fatalf("%d records vs %d adjusted phases", len(records), len(adj))
	}
	for i := range records {
		if records[i].Interval != adj[i] {
			t.Errorf("record %d interval %v != adjusted phase %v", i, records[i].Interval, adj[i])
		}
	}
}

func TestRecurringDetectorRejectsBadConfig(t *testing.T) {
	if _, err := NewRecurringDetector(Config{}, 0.5); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestConfidence(t *testing.T) {
	d := cfgConstant().MustNew()
	if d.Confidence() != 0 {
		t.Error("confidence before any similarity should be 0")
	}
	for _, e := range seg(nil, 1, 60) {
		d.Process(e)
	}
	// Deep inside a pure phase the unweighted similarity is 1.0 and the
	// threshold 0.6: confidence 0.4.
	if c := d.Confidence(); c < 0.35 || c > 0.45 {
		t.Errorf("confidence = %f, want ~0.4", c)
	}
	// Finish closes the open phase; its evidence must not linger.
	d.Finish()
	if c := d.Confidence(); c != 0 {
		t.Errorf("confidence = %f after Finish, want 0 (phase closed)", c)
	}
}
