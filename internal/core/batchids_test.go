package core

import (
	"testing"

	"opd/internal/trace"
)

// feedIDs replays tr through the dense-ID batch path exactly as the
// streaming server does: each chunk's elements are interned through a
// client-side builder, the model is re-bound whenever the table grows
// (extension may reallocate the backing array), and the chunk goes in
// as IDs.
func feedIDs(d *Detector, tr trace.Trace, size func(i int) int) {
	b := trace.NewInternedBuilder(0)
	bound := 0
	var ids []int32
	for i, k := 0, 0; i < len(tr); k++ {
		end := i + size(k)
		if end > len(tr) {
			end = len(tr)
		}
		ids = ids[:0]
		for _, e := range tr[i:end] {
			ids = append(ids, b.Intern(e))
		}
		if card := b.Cardinality(); card > bound {
			d.Bind(trace.NewInternedTable(b.Symbols()))
			bound = card
		}
		d.ProcessBatchIDs(ids)
		i = end
	}
	d.Finish()
}

// TestProcessBatchIDsEquivalence pins the dense-ID twin of the
// chunk-size-agnostic contract: feeding a trace through ProcessBatchIDs
// in chunks of any size — IDs assigned by a streaming InternedBuilder in
// first-appearance order, table re-bound as it grows — produces output
// identical to RunTrace over the raw elements.
func TestProcessBatchIDsEquivalence(t *testing.T) {
	tr := batchTestTrace(40000)
	configs := []Config{
		{CWSize: 400, SkipFactor: 1, TW: ConstantTW, Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6},
		{CWSize: 500, TWSize: 700, SkipFactor: 64, TW: AdaptiveTW, Anchor: AnchorRN, Resize: ResizeSlide, Model: WeightedModel, Analyzer: ThresholdAnalyzer, Param: 0.5},
		FixedInterval(512, UnweightedModel, AverageAnalyzer, 0.3),
	}
	for _, cfg := range configs {
		want := RunTrace(cfg.MustNew(), tr)
		for name, size := range chunkings() {
			d := cfg.MustNew()
			feedIDs(d, tr, size)
			if d.Consumed() != want.Consumed() {
				t.Fatalf("%s/%s: consumed %d, want %d", cfg.ID(), name, d.Consumed(), want.Consumed())
			}
			if d.SimilarityComputations() != want.SimilarityComputations() {
				t.Errorf("%s/%s: sim computations %d, want %d", cfg.ID(), name,
					d.SimilarityComputations(), want.SimilarityComputations())
			}
			if !equalIntervals(d.Phases(), want.Phases()) {
				t.Errorf("%s/%s: phases %v, want %v", cfg.ID(), name, d.Phases(), want.Phases())
			}
			if !equalIntervals(d.AdjustedPhases(), want.AdjustedPhases()) {
				t.Errorf("%s/%s: adjusted phases %v, want %v", cfg.ID(), name,
					d.AdjustedPhases(), want.AdjustedPhases())
			}
		}
	}
}

// TestProcessBatchIDsSnapshotRestore pins the one sanctioned entry-point
// crossover: a detector snapshotted mid-ID-run persists its partial
// group in Branch form; after restore and re-bind the first
// ProcessBatchIDs call adopts it back into ID form, and the continued
// run matches an uninterrupted one bit for bit.
func TestProcessBatchIDsSnapshotRestore(t *testing.T) {
	tr := batchTestTrace(30000)
	cfg := Config{CWSize: 400, TWSize: 600, SkipFactor: 64, TW: AdaptiveTW,
		Anchor: AnchorRN, Resize: ResizeSlide, Model: WeightedModel, Analyzer: ThresholdAnalyzer, Param: 0.5}
	want := RunTrace(cfg.MustNew(), tr)

	// Cut points chosen to leave a partial group pending (not multiples
	// of the skip factor) and to land mid-phase.
	for _, cut := range []int{101, 12345, 29999} {
		b := trace.NewInternedBuilder(0)
		d := cfg.MustNew()
		d.Bind(trace.NewInternedTable(b.Symbols()))
		feed := func(det *Detector, elems trace.Trace) {
			ids := make([]int32, 0, len(elems))
			for _, e := range elems {
				ids = append(ids, b.Intern(e))
			}
			det.Bind(trace.NewInternedTable(b.Symbols()))
			det.ProcessBatchIDs(ids)
		}
		// Uneven chunks up to the cut.
		for i := 0; i < cut; {
			end := i + 777
			if end > cut {
				end = cut
			}
			feed(d, tr[i:end])
			i = end
		}
		snap, err := d.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: snapshot: %v", cut, err)
		}
		d2, cfg2, err := RestoreDetector(snap)
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if cfg2.ID() != cfg.ID() {
			t.Fatalf("cut %d: restored config %s, want %s", cut, cfg2.ID(), cfg.ID())
		}
		// The serve layer re-seeds the negotiated table from the restored
		// model and re-binds; mirror that, then continue on the ID path.
		table := d2.InternTable()
		if table == nil {
			t.Fatalf("cut %d: restored detector has no intern table", cut)
		}
		b2 := trace.NewInternedBuilder(len(table))
		for _, sym := range table {
			b2.Intern(sym)
		}
		b = b2
		d2.Bind(trace.NewInternedTable(b.Symbols()))
		for i := cut; i < len(tr); {
			end := i + 777
			if end > len(tr) {
				end = len(tr)
			}
			feed(d2, tr[i:end])
			i = end
		}
		d2.Finish()
		if d2.Consumed() != want.Consumed() {
			t.Fatalf("cut %d: consumed %d, want %d", cut, d2.Consumed(), want.Consumed())
		}
		if d2.SimilarityComputations() != want.SimilarityComputations() {
			t.Errorf("cut %d: sim computations %d, want %d", cut, d2.SimilarityComputations(), want.SimilarityComputations())
		}
		if !equalIntervals(d2.Phases(), want.Phases()) {
			t.Errorf("cut %d: phases %v, want %v", cut, d2.Phases(), want.Phases())
		}
		if !equalIntervals(d2.AdjustedPhases(), want.AdjustedPhases()) {
			t.Errorf("cut %d: adjusted phases %v, want %v", cut, d2.AdjustedPhases(), want.AdjustedPhases())
		}
	}
}

// TestMixedEntryPointsPanic pins the guard: once a run has a pending ID
// group, the Branch entry point refuses to continue it.
func TestMixedEntryPointsPanic(t *testing.T) {
	cfg := Config{CWSize: 100, SkipFactor: 8, TW: ConstantTW, Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6}
	d := cfg.MustNew()
	b := trace.NewInternedBuilder(0)
	ids := []int32{b.Intern(trace.MakeBranch(0, 1, true)), b.Intern(trace.MakeBranch(0, 2, false))}
	d.Bind(trace.NewInternedTable(b.Symbols()))
	d.ProcessBatchIDs(ids) // leaves a partial group pending
	defer func() {
		if recover() == nil {
			t.Fatal("ProcessBatch after a pending ID group did not panic")
		}
	}()
	d.ProcessBatch(trace.Trace{trace.MakeBranch(0, 3, true)})
}
