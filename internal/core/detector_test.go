package core

import (
	"strings"
	"testing"

	"opd/internal/interval"
	"opd/internal/trace"
)

// seg appends n copies of the element at offset off.
func seg(tr trace.Trace, off, n int) trace.Trace {
	for i := 0; i < n; i++ {
		tr = append(tr, el(off))
	}
	return tr
}

// twoPhaseTrace returns a stream with two stable regions separated by a
// switch: 60 x A, 60 x B.
func twoPhaseTrace() trace.Trace {
	tr := seg(nil, 1, 60)
	return seg(tr, 2, 60)
}

func cfgConstant() Config {
	return Config{CWSize: 8, TWSize: 8, SkipFactor: 1, TW: ConstantTW,
		Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6}
}

func TestDetectorFindsStablePhases(t *testing.T) {
	d := cfgConstant().MustNew()
	RunTrace(d, twoPhaseTrace())
	phases := d.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %v, want two", phases)
	}
	// Phase one: detected after the windows fill (16 elements), ends when
	// B elements reach the CW.
	p0, p1 := phases[0], phases[1]
	if p0.Start < 15 || p0.Start > 17 {
		t.Errorf("phase 0 start = %d, want ~16", p0.Start)
	}
	if p0.End < 60 || p0.End > 70 {
		t.Errorf("phase 0 end = %d, want shortly after 60", p0.End)
	}
	// Phase two: after the windows flush and refill with B.
	if p1.Start < p0.End || p1.Start > 90 {
		t.Errorf("phase 1 start = %d, want within refill distance", p1.Start)
	}
	if p1.End != 120 {
		t.Errorf("phase 1 end = %d, want 120 (trace end)", p1.End)
	}
	if err := interval.Validate(phases, 120); err != nil {
		t.Errorf("phases malformed: %v", err)
	}
	if err := interval.Validate(d.AdjustedPhases(), 120); err != nil {
		t.Errorf("adjusted phases malformed: %v", err)
	}
}

func TestDetectorStateMachineOutput(t *testing.T) {
	d := cfgConstant().MustNew()
	tr := twoPhaseTrace()
	var states []State
	for _, e := range tr {
		states = append(states, d.Process(e))
	}
	d.Finish()
	// Until the windows fill, output must be T.
	for i := 0; i < 15; i++ {
		if states[i] != Transition {
			t.Fatalf("state[%d] = %v before windows filled", i, states[i])
		}
	}
	// Deep inside region A the state must be P.
	for i := 30; i < 55; i++ {
		if states[i] != InPhase {
			t.Errorf("state[%d] = %v, want P", i, states[i])
		}
	}
	// At the region switch the state must return to T at some point.
	sawT := false
	for i := 60; i < 80; i++ {
		if states[i] == Transition {
			sawT = true
			break
		}
	}
	if !sawT {
		t.Error("no transition reported at region switch")
	}
}

func TestAdjustedPhasesStartEarlier(t *testing.T) {
	cfg := cfgConstant()
	cfg.TW = AdaptiveTW
	cfg.Anchor = AnchorRN
	cfg.Resize = ResizeSlide
	d := cfg.MustNew()
	RunTrace(d, twoPhaseTrace())
	raw := d.Phases()
	adj := d.AdjustedPhases()
	if len(raw) != len(adj) {
		t.Fatalf("raw %d phases, adjusted %d", len(raw), len(adj))
	}
	for i := range raw {
		if adj[i].Start > raw[i].Start {
			t.Errorf("adjusted start %d later than raw %d", adj[i].Start, raw[i].Start)
		}
		if adj[i].End != raw[i].End {
			t.Errorf("adjusted end %d differs from raw %d", adj[i].End, raw[i].End)
		}
	}
	// The first region is pure A elements, so anchoring should pull the
	// start all the way back to the trailing window's base.
	if adj[0].Start > 8 {
		t.Errorf("adjusted phase 0 start = %d, want within the first TW", adj[0].Start)
	}
}

func TestFixedIntervalComputesFewerSimilarities(t *testing.T) {
	tr := twoPhaseTrace()
	skip1 := cfgConstant().MustNew()
	RunTrace(skip1, tr)
	fixed := FixedInterval(8, UnweightedModel, ThresholdAnalyzer, 0.6).MustNew()
	RunTrace(fixed, tr)
	if fixed.SimilarityComputations() >= skip1.SimilarityComputations() {
		t.Errorf("fixed interval %d computations, skip-1 %d; fixed must be fewer",
			fixed.SimilarityComputations(), skip1.SimilarityComputations())
	}
	if got := skip1.SimilarityComputations(); got < 90 {
		t.Errorf("skip-1 computations = %d, want ~one per element after fill", got)
	}
	if got := fixed.SimilarityComputations(); got > 15 {
		t.Errorf("fixed-interval computations = %d, want ~one per interval", got)
	}
}

func TestAdaptiveDetectsLikeConstantOnCleanStream(t *testing.T) {
	tr := twoPhaseTrace()
	for _, cfg := range []Config{
		{CWSize: 8, TW: AdaptiveTW, Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6},
		{CWSize: 8, TW: AdaptiveTW, Model: WeightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6},
		{CWSize: 8, TW: AdaptiveTW, Model: UnweightedModel, Analyzer: AverageAnalyzer, Param: 0.1},
		{CWSize: 8, TW: ConstantTW, Model: WeightedModel, Analyzer: AverageAnalyzer, Param: 0.1},
	} {
		d := cfg.MustNew()
		RunTrace(d, tr)
		if len(d.Phases()) != 2 {
			t.Errorf("%s: phases = %v, want 2", cfg.ID(), d.Phases())
		}
	}
}

func TestAverageAnalyzerAdaptsThreshold(t *testing.T) {
	a := NewAverage(0.05)
	// Bootstrap: accepts values >= 0.95.
	if a.ProcessValue(0.96) != InPhase {
		t.Error("bootstrap rejected 0.96")
	}
	if a.ProcessValue(0.90) != Transition {
		t.Error("bootstrap accepted 0.90")
	}
	// With history averaging 0.88, the paper's example: accepts >= 0.86...
	a.ResetStats()
	a.UpdateStats(0.88)
	a.UpdateStats(0.88)
	if a.ProcessValue(0.86) != InPhase {
		t.Error("0.86 rejected with average 0.88 and delta 0.05")
	}
	if a.ProcessValue(0.82) != Transition {
		t.Error("0.82 accepted with average 0.88 and delta 0.05")
	}
	// ResetStats returns to the bootstrap threshold.
	a.ResetStats()
	if a.ProcessValue(0.90) != Transition {
		t.Error("reset did not restore bootstrap threshold")
	}
}

func TestProcessEqualsProcessProfile(t *testing.T) {
	tr := twoPhaseTrace()
	one := cfgConstant().MustNew()
	for _, e := range tr {
		one.Process(e)
	}
	one.Finish()
	batch := cfgConstant().MustNew()
	RunTrace(batch, tr)
	p1, p2 := one.Phases(), batch.Phases()
	if len(p1) != len(p2) {
		t.Fatalf("phase counts differ: %v vs %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("phase %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestSkipFactorGroupsStates(t *testing.T) {
	cfg := cfgConstant()
	cfg.SkipFactor = 4
	d := cfg.MustNew()
	RunTrace(d, twoPhaseTrace())
	for _, p := range d.Phases() {
		if p.Start%4 != 0 || p.End%4 != 0 {
			t.Errorf("phase %v not aligned to skip groups", p)
		}
	}
}

func TestFinishClosesOpenPhase(t *testing.T) {
	d := cfgConstant().MustNew()
	RunTrace(d, seg(nil, 1, 50))
	phases := d.Phases()
	if len(phases) != 1 {
		t.Fatalf("phases = %v, want one", phases)
	}
	if phases[0].End != 50 {
		t.Errorf("open phase closed at %d, want 50", phases[0].End)
	}
	// Finish is idempotent; processing afterwards panics.
	d.Finish()
	defer func() {
		if recover() == nil {
			t.Error("ProcessProfile after Finish did not panic")
		}
	}()
	d.ProcessProfile([]trace.Branch{el(1)})
}

// Regression: lastSim/haveSim used to survive endPhase and the
// model-not-ready path, so Confidence reported a value from a closed
// phase while the windows refilled.
func TestConfidenceDoesNotOutlivePhase(t *testing.T) {
	d := cfgConstant().MustNew()
	tr := twoPhaseTrace()
	ended := false
	reopened := false
	for i, e := range tr {
		was := d.State()
		st := d.Process(e)
		switch {
		case was.IsPhase() && st.IsTransition():
			ended = true
			if c := d.Confidence(); c != 0 {
				t.Fatalf("element %d: confidence %f right after phase end, want 0", i, c)
			}
		case ended && !reopened && st.IsTransition():
			// Windows flushed at the phase end are refilling: the model is
			// not ready, so there is no current evidence.
			if c := d.Confidence(); c != 0 {
				t.Fatalf("element %d: confidence %f while model not ready, want 0", i, c)
			}
		case ended && st.IsPhase():
			reopened = true
		}
	}
	if !ended || !reopened {
		t.Fatalf("trace did not exercise a phase end and a reopen (ended=%v reopened=%v)", ended, reopened)
	}
	d.Finish()
	if c := d.Confidence(); c != 0 {
		t.Errorf("confidence = %f after Finish, want 0", c)
	}
}

func TestFinishFlushesPartialPendingGroup(t *testing.T) {
	cfg := cfgConstant()
	cfg.SkipFactor = 4
	d := cfg.MustNew()
	for _, e := range seg(nil, 1, 50) { // 12 full groups + 2 pending
		d.Process(e)
	}
	if d.Consumed() != 48 {
		t.Fatalf("consumed = %d before Finish, want 48 (two elements pending)", d.Consumed())
	}
	d.Finish()
	if d.Consumed() != 50 {
		t.Errorf("consumed = %d after Finish, want 50 (pending flushed)", d.Consumed())
	}
	phases := d.Phases()
	if len(phases) != 1 || phases[0].End != 50 {
		t.Errorf("phases = %v, want one phase closed at 50", phases)
	}
}

func TestFinishClosesOpenPhaseWithHooks(t *testing.T) {
	d := cfgConstant().MustNew()
	var starts, ends int
	var endIv interval.Interval
	var endSig []trace.Branch
	d.SetPhaseStartHook(func(adjStart int64, sig []trace.Branch) {
		starts++
		if sig == nil {
			t.Error("start hook got nil signature from a Signaturer model")
		}
	})
	d.SetPhaseEndHook(func(iv interval.Interval, sig []trace.Branch) {
		ends++
		endIv, endSig = iv, sig
	})
	RunTrace(d, seg(nil, 1, 50)) // single behaviour: phase still open at stream end
	if starts != 1 || ends != 1 {
		t.Fatalf("start hook fired %d times, end hook %d, want 1 and 1", starts, ends)
	}
	if endIv.End != 50 {
		t.Errorf("end hook interval %v, want end 50 (stream end)", endIv)
	}
	if len(endSig) == 0 {
		t.Error("end hook got empty signature for the open phase")
	}
}

func TestDoubleFinishIsIdempotent(t *testing.T) {
	d := cfgConstant().MustNew()
	ends := 0
	d.SetPhaseEndHook(func(interval.Interval, []trace.Branch) { ends++ })
	RunTrace(d, seg(nil, 1, 50)) // RunTrace already finishes
	phases := len(d.Phases())
	d.Finish()
	d.Finish()
	if got := len(d.Phases()); got != phases {
		t.Errorf("phases grew from %d to %d across repeated Finish", phases, got)
	}
	if ends != 1 {
		t.Errorf("end hook fired %d times across repeated Finish, want 1", ends)
	}
	if d.Consumed() != 50 {
		t.Errorf("consumed = %d after repeated Finish, want 50", d.Consumed())
	}
}

func TestEmptyGroupIsNoOp(t *testing.T) {
	d := cfgConstant().MustNew()
	if st := d.ProcessProfile(nil); st != Transition {
		t.Errorf("empty group returned %v", st)
	}
	if d.Consumed() != 0 {
		t.Errorf("consumed = %d after empty group", d.Consumed())
	}
}

func TestNewDetectorPanicsOnBadSkip(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDetector with skip 0 did not panic")
		}
	}()
	NewDetector(NewSetModel(UnweightedModel, 4, 4, ConstantTW, AnchorRN, ResizeSlide), NewThreshold(0.5), 0)
}

func TestConfigValidate(t *testing.T) {
	good := cfgConstant()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.CWSize = -1 }, "CW size"},
		{func(c *Config) { c.TWSize = -2 }, "TW size"},
		{func(c *Config) { c.SkipFactor = -1 }, "skip factor"},
		{func(c *Config) { c.SkipFactor = 99 }, "exceeds CW size"},
		{func(c *Config) { c.TW = TWPolicy(9) }, "TW policy"},
		{func(c *Config) { c.Anchor = AnchorPolicy(9) }, "anchor policy"},
		{func(c *Config) { c.Resize = ResizePolicy(9) }, "resize policy"},
		{func(c *Config) { c.Model = ModelKind(9) }, "model"},
		{func(c *Config) { c.Analyzer = AnalyzerKind(9) }, "analyzer"},
		{func(c *Config) { c.Param = 0 }, "threshold"},
		{func(c *Config) { c.Param = 1.5 }, "threshold"},
		{func(c *Config) { c.Analyzer = AverageAnalyzer; c.Param = 1.0 }, "delta"},
	}
	for _, cse := range cases {
		c := cfgConstant()
		cse.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("mutation expecting %q accepted", cse.want)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("error %q does not mention %q", err, cse.want)
		}
		if _, err := c.New(); err == nil {
			t.Error("New accepted invalid config")
		}
	}
}

func TestConfigIDAndFixedInterval(t *testing.T) {
	fi := FixedInterval(5000, UnweightedModel, ThresholdAnalyzer, 0.5)
	if !fi.IsFixedInterval() {
		t.Error("FixedInterval config not recognized")
	}
	if !strings.Contains(fi.ID(), "fixedinterval") {
		t.Errorf("ID = %q", fi.ID())
	}
	c := cfgConstant()
	if c.IsFixedInterval() {
		t.Error("skip-1 constant config misclassified as fixed interval")
	}
	c.TW = AdaptiveTW
	id := c.ID()
	for _, want := range []string{"adaptive", "cw8", "skip1", "unweighted", "thr0.6", "rn", "slide"} {
		if !strings.Contains(id, want) {
			t.Errorf("ID %q missing %q", id, want)
		}
	}
	// Defaults: TWSize=0 -> CWSize, SkipFactor=0 -> 1.
	d := Config{CWSize: 16, Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.5}
	if err := d.Validate(); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}
	if !strings.Contains(d.ID(), "tw16/skip1") {
		t.Errorf("defaulted ID = %q", d.ID())
	}
	if c.MustNew() == nil {
		t.Error("MustNew returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew on invalid config did not panic")
		}
	}()
	Config{}.MustNew()
}

func TestStateAndPolicyStrings(t *testing.T) {
	if Transition.String() != "T" || InPhase.String() != "P" {
		t.Error("state strings wrong")
	}
	if !InPhase.IsPhase() || InPhase.IsTransition() || !Transition.IsTransition() {
		t.Error("state predicates wrong")
	}
	for _, s := range []string{
		ConstantTW.String(), AdaptiveTW.String(), TWPolicy(9).String(),
		AnchorRN.String(), AnchorLNN.String(), AnchorPolicy(9).String(),
		ResizeSlide.String(), ResizeMove.String(), ResizePolicy(9).String(),
		UnweightedModel.String(), WeightedModel.String(), ModelKind(9).String(),
		ThresholdAnalyzer.String(), AverageAnalyzer.String(), AnalyzerKind(9).String(),
	} {
		if s == "" {
			t.Error("empty policy name")
		}
	}
}
