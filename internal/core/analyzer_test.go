package core

import (
	"testing"

	"opd/internal/trace"
)

func TestThresholdBoundary(t *testing.T) {
	a := NewThreshold(0.6)
	if a.Boundary() != 0.6 {
		t.Errorf("Boundary = %f", a.Boundary())
	}
	if a.ProcessValue(0.6) != InPhase {
		t.Error("threshold is inclusive")
	}
	if a.ProcessValue(0.59) != Transition {
		t.Error("below threshold not transition")
	}
	a.ResetStats()
	a.UpdateStats(0.1) // no-ops must not change behaviour
	if a.ProcessValue(0.6) != InPhase {
		t.Error("stateless analyzer changed behaviour")
	}
}

func TestAverageBoundaryTracksHistory(t *testing.T) {
	a := NewAverage(0.1)
	if a.Boundary() != 0.9 {
		t.Errorf("bootstrap boundary = %f, want 0.9", a.Boundary())
	}
	a.UpdateStats(0.8)
	a.UpdateStats(0.6)
	if b := a.Boundary(); b < 0.599 || b > 0.601 {
		t.Errorf("boundary = %f, want 0.6 (avg 0.7 - delta 0.1)", b)
	}
}

func TestHysteresisDebounces(t *testing.T) {
	a := NewHysteresis(0.8, 0.5)
	if a.ProcessValue(0.7) != Transition {
		t.Error("0.7 entered below the enter threshold")
	}
	if a.ProcessValue(0.85) != InPhase {
		t.Error("0.85 did not enter")
	}
	// A dip to 0.6 stays in phase (above exit), a dip to 0.4 leaves.
	if a.ProcessValue(0.6) != InPhase {
		t.Error("moderate dip ended the phase")
	}
	if a.ProcessValue(0.4) != Transition {
		t.Error("deep dip did not end the phase")
	}
	// Back at 0.6: not enough to re-enter.
	if a.ProcessValue(0.6) != Transition {
		t.Error("re-entered below the enter threshold")
	}
	if a.Boundary() != 0.8 {
		t.Errorf("out-of-phase boundary = %f, want enter", a.Boundary())
	}
	a.ProcessValue(0.9)
	if a.Boundary() != 0.5 {
		t.Errorf("in-phase boundary = %f, want exit", a.Boundary())
	}
}

func TestHysteresisPanicsOnInvertedThresholds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for enter < exit")
		}
	}()
	NewHysteresis(0.4, 0.6)
}

func TestHysteresisInDetector(t *testing.T) {
	// On a noisy stream, hysteresis yields fewer, longer phases than a
	// plain threshold at the enter level.
	var tr trace.Trace
	rng := int64(99)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % n
	}
	for i := 0; i < 2000; i++ {
		site := 1
		if next(10) == 0 { // 10% noise from a second site
			site = 2
		}
		tr = append(tr, el(site))
	}
	run := func(an Analyzer) int {
		d := NewDetector(NewSetModel(WeightedModel, 50, 50, ConstantTW, AnchorRN, ResizeSlide), an, 1)
		RunTrace(d, tr)
		return len(d.Phases())
	}
	plain := run(NewThreshold(0.92))
	hyst := run(NewHysteresis(0.92, 0.75))
	if hyst > plain {
		t.Errorf("hysteresis produced more phases (%d) than plain threshold (%d)", hyst, plain)
	}
	if hyst == 0 {
		t.Error("hysteresis detected nothing")
	}
}
