package core

import (
	"testing"

	"opd/internal/interval"
	"opd/internal/trace"
)

func equalIntervals(a, b []interval.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchTestTrace builds a deterministic trace with phase structure: long
// runs of a small repeating set of branches separated by noisy stretches.
func batchTestTrace(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	rng := int64(7)
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	for len(tr) < n {
		// A stable phase: cycle over 4 sites.
		for i := 0; i < 3000 && len(tr) < n; i++ {
			tr = append(tr, trace.MakeBranch(0, 1+i%4, true))
		}
		// A noisy transition: draw from a large pool.
		for i := 0; i < 900 && len(tr) < n; i++ {
			tr = append(tr, trace.MakeBranch(0, 10+next(500), next(2) == 0))
		}
	}
	return tr
}

// chunkSizes yields the chunk length sequence for one chunking scheme:
// fixed sizes, plus an uneven scheme driven by an LCG.
func chunkings() map[string]func(i int) int {
	rng := int64(99)
	return map[string]func(i int) int{
		"single":   func(int) int { return 1 },
		"seven":    func(int) int { return 7 },
		"skipfull": func(int) int { return 64 },
		"large":    func(int) int { return 5000 },
		"uneven": func(int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(rng>>40) % 997
			if v < 0 {
				v = -v
			}
			return v + 1
		},
	}
}

// TestProcessBatchEquivalence pins the chunk-size-agnostic contract:
// feeding a trace through ProcessBatch in chunks of any size, then
// finishing, produces output identical to RunTrace over the whole trace.
func TestProcessBatchEquivalence(t *testing.T) {
	tr := batchTestTrace(40000)
	configs := []Config{
		{CWSize: 400, SkipFactor: 1, TW: ConstantTW, Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6},
		{CWSize: 500, TWSize: 700, SkipFactor: 64, TW: AdaptiveTW, Anchor: AnchorRN, Resize: ResizeSlide, Model: WeightedModel, Analyzer: ThresholdAnalyzer, Param: 0.5},
		FixedInterval(512, UnweightedModel, AverageAnalyzer, 0.3),
	}
	for _, cfg := range configs {
		want := RunTrace(cfg.MustNew(), tr)
		for name, size := range chunkings() {
			d := cfg.MustNew()
			for i, k := 0, 0; i < len(tr); k++ {
				end := i + size(k)
				if end > len(tr) {
					end = len(tr)
				}
				d.ProcessBatch(tr[i:end])
				i = end
			}
			d.Finish()
			if d.Consumed() != want.Consumed() {
				t.Fatalf("%s/%s: consumed %d, want %d", cfg.ID(), name, d.Consumed(), want.Consumed())
			}
			if d.SimilarityComputations() != want.SimilarityComputations() {
				t.Errorf("%s/%s: sim computations %d, want %d", cfg.ID(), name,
					d.SimilarityComputations(), want.SimilarityComputations())
			}
			if !equalIntervals(d.Phases(), want.Phases()) {
				t.Errorf("%s/%s: phases %v, want %v", cfg.ID(), name, d.Phases(), want.Phases())
			}
			if !equalIntervals(d.AdjustedPhases(), want.AdjustedPhases()) {
				t.Errorf("%s/%s: adjusted phases %v, want %v", cfg.ID(), name,
					d.AdjustedPhases(), want.AdjustedPhases())
			}
		}
	}
}
