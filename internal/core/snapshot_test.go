package core

import (
	"math"
	"testing"

	"opd/internal/interval"
	"opd/internal/trace"
)

// snapshotConfigs is the restore-equivalence matrix: every window policy
// (constant, adaptive with both anchor/resize corners, fixed-interval),
// both models, both analyzers, and skip factors that leave pending
// partial groups at most chunk boundaries.
func snapshotConfigs() []Config {
	return []Config{
		{CWSize: 400, SkipFactor: 1, TW: ConstantTW, Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6},
		{CWSize: 300, TWSize: 450, SkipFactor: 16, TW: ConstantTW, Model: WeightedModel, Analyzer: AverageAnalyzer, Param: 0.3},
		{CWSize: 500, TWSize: 700, SkipFactor: 64, TW: AdaptiveTW, Anchor: AnchorRN, Resize: ResizeSlide, Model: WeightedModel, Analyzer: ThresholdAnalyzer, Param: 0.5},
		{CWSize: 350, SkipFactor: 7, TW: AdaptiveTW, Anchor: AnchorLNN, Resize: ResizeMove, Model: UnweightedModel, Analyzer: AverageAnalyzer, Param: 0.25},
		FixedInterval(512, UnweightedModel, AverageAnalyzer, 0.3),
		FixedInterval(256, WeightedModel, ThresholdAnalyzer, 0.55),
	}
}

// eventRec captures the hook stream so interrupted and uninterrupted runs
// can be compared event by event.
type eventRec struct {
	kind  string
	at    int64
	start int64
}

func recordHooks(d *Detector, out *[]eventRec) {
	d.SetPhaseStartHook(func(adj int64, _ []trace.Branch) {
		*out = append(*out, eventRec{kind: "start", at: adj})
	})
	d.SetPhaseEndHook(func(iv interval.Interval, _ []trace.Branch) {
		*out = append(*out, eventRec{kind: "end", at: iv.End, start: iv.Start})
	})
}

// feedChunks drives tr through d in uneven chunks, invoking cut() with
// the chunk index before each chunk; cut may replace the detector (the
// snapshot/restore seam). Returns the final detector.
func feedChunks(t *testing.T, d *Detector, tr trace.Trace, cutAt int, cut func(d *Detector) *Detector) *Detector {
	t.Helper()
	sizes := []int{997, 13, 4096, 1, 2048, 129}
	for i, k := 0, 0; i < len(tr); k++ {
		if k == cutAt && cut != nil {
			d = cut(d)
		}
		end := i + sizes[k%len(sizes)]
		if end > len(tr) {
			end = len(tr)
		}
		d.ProcessBatch(tr[i:end])
		i = end
	}
	d.Finish()
	return d
}

// TestSnapshotRestoreEquivalence pins the durability contract at its
// root: snapshotting a detector at an arbitrary chunk boundary,
// restoring it, and continuing the stream is bit-identical to the
// uninterrupted run — phases, adjusted phases, similarity counts, the
// hook event stream, and the confidence value's float bits.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	tr := batchTestTrace(30000)
	for _, cfg := range snapshotConfigs() {
		var wantEvents []eventRec
		want := cfg.MustNew()
		recordHooks(want, &wantEvents)
		feedChunks(t, want, tr, -1, nil)

		for _, cutAt := range []int{0, 1, 2, 5, 9, 14} {
			var gotEvents []eventRec
			first := cfg.MustNew()
			recordHooks(first, &gotEvents)
			got := feedChunks(t, first, tr, cutAt, func(d *Detector) *Detector {
				snap, err := d.Snapshot()
				if err != nil {
					t.Fatalf("%s cut %d: snapshot: %v", cfg.ID(), cutAt, err)
				}
				restored, rcfg, err := RestoreDetector(snap)
				if err != nil {
					t.Fatalf("%s cut %d: restore: %v", cfg.ID(), cutAt, err)
				}
				if rcfg.ID() != cfg.withDefaults().ID() {
					t.Fatalf("%s cut %d: restored config %s", cfg.ID(), cutAt, rcfg.ID())
				}
				recordHooks(restored, &gotEvents)
				return restored
			})
			if got.Consumed() != want.Consumed() {
				t.Fatalf("%s cut %d: consumed %d, want %d", cfg.ID(), cutAt, got.Consumed(), want.Consumed())
			}
			if got.SimilarityComputations() != want.SimilarityComputations() {
				t.Errorf("%s cut %d: sim computations %d, want %d", cfg.ID(), cutAt,
					got.SimilarityComputations(), want.SimilarityComputations())
			}
			if !equalIntervals(got.Phases(), want.Phases()) {
				t.Errorf("%s cut %d: phases %v, want %v", cfg.ID(), cutAt, got.Phases(), want.Phases())
			}
			if !equalIntervals(got.AdjustedPhases(), want.AdjustedPhases()) {
				t.Errorf("%s cut %d: adjusted %v, want %v", cfg.ID(), cutAt,
					got.AdjustedPhases(), want.AdjustedPhases())
			}
			if math.Float64bits(got.Confidence()) != math.Float64bits(want.Confidence()) {
				t.Errorf("%s cut %d: confidence %v, want %v", cfg.ID(), cutAt,
					got.Confidence(), want.Confidence())
			}
			if len(gotEvents) != len(wantEvents) {
				t.Fatalf("%s cut %d: %d events, want %d", cfg.ID(), cutAt, len(gotEvents), len(wantEvents))
			}
			for i := range gotEvents {
				if gotEvents[i] != wantEvents[i] {
					t.Errorf("%s cut %d: event %d = %+v, want %+v", cfg.ID(), cutAt, i, gotEvents[i], wantEvents[i])
				}
			}
		}
	}
}

// TestSnapshotMidStreamState pins that a snapshot taken mid-stream
// round-trips the observable detector accessors exactly, including the
// pending partial group and a still-open phase.
func TestSnapshotMidStreamState(t *testing.T) {
	cfg := Config{CWSize: 200, SkipFactor: 32, TW: AdaptiveTW, Anchor: AnchorRN, Resize: ResizeSlide,
		Model: WeightedModel, Analyzer: AverageAnalyzer, Param: 0.4}
	tr := batchTestTrace(9000)
	d := cfg.MustNew()
	d.ProcessBatch(tr[:8007]) // not a multiple of 32: leaves a pending group

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := RestoreDetector(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Consumed() != d.Consumed() || r.State() != d.State() ||
		r.SimilarityComputations() != d.SimilarityComputations() {
		t.Fatalf("restored accessors diverge: consumed %d/%d state %v/%v sims %d/%d",
			r.Consumed(), d.Consumed(), r.State(), d.State(),
			r.SimilarityComputations(), d.SimilarityComputations())
	}
	if len(r.pending) != len(d.pending) {
		t.Fatalf("pending group %d, want %d", len(r.pending), len(d.pending))
	}

	// A snapshot of a finished detector restores as finished.
	d.Finish()
	snap2, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := RestoreDetector(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.finished {
		t.Fatal("restored detector not finished")
	}
	if !equalIntervals(r2.Phases(), d.Phases()) || !equalIntervals(r2.AdjustedPhases(), d.AdjustedPhases()) {
		t.Fatal("finished snapshot lost phases")
	}
}

// TestSnapshotUnsupportedComponents pins the error (not panic) path for
// detectors the encoding cannot express.
func TestSnapshotUnsupportedComponents(t *testing.T) {
	d := NewDetector(NewSetModel(UnweightedModel, 10, 10, ConstantTW, AnchorRN, ResizeSlide),
		NewHysteresis(0.7, 0.5), 1)
	if _, err := d.Snapshot(); err == nil {
		t.Fatal("snapshot of hysteresis analyzer did not error")
	}
}

// TestRestoreRejectsDamage pins that every single-byte corruption and
// every truncation of a valid snapshot is rejected with an error — never
// a panic, never a silently wrong detector.
func TestRestoreRejectsDamage(t *testing.T) {
	cfg := Config{CWSize: 100, SkipFactor: 8, TW: AdaptiveTW, Anchor: AnchorRN, Resize: ResizeSlide,
		Model: WeightedModel, Analyzer: AverageAnalyzer, Param: 0.4}
	d := cfg.MustNew()
	d.ProcessBatch(batchTestTrace(5000))
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RestoreDetector(snap); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for off := range snap {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x41
		if _, _, err := RestoreDetector(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", off)
		}
	}
	for cut := 0; cut < len(snap); cut++ {
		if _, _, err := RestoreDetector(snap[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// FuzzDetectorRestore hammers RestoreDetector with arbitrary bytes: it
// must never panic, and any detector it does accept must be usable.
func FuzzDetectorRestore(f *testing.F) {
	cfg := Config{CWSize: 50, SkipFactor: 4, TW: AdaptiveTW, Anchor: AnchorLNN, Resize: ResizeMove,
		Model: UnweightedModel, Analyzer: ThresholdAnalyzer, Param: 0.6}
	d := cfg.MustNew()
	d.ProcessBatch(batchTestTrace(2000))
	snap, err := d.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	f.Add([]byte("OPDDETS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, _, err := RestoreDetector(data)
		if err != nil {
			return
		}
		if !r.finished {
			r.ProcessBatch(batchTestTrace(300))
			r.Finish()
		}
		r.Phases()
	})
}
