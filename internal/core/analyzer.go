package core

// Analyzer is the framework's similarity analyzer component: it decides,
// for each similarity value, whether execution is in phase or in
// transition. The detector calls ResetStats when a phase begins and
// UpdateStats with each similarity value observed while the phase
// continues, enabling adaptive analyzers.
type Analyzer interface {
	ProcessValue(sim float64) State
	ResetStats()
	UpdateStats(sim float64)
}

// Threshold is the fixed-threshold analyzer used by most prior work: P
// whenever similarity meets the threshold.
type Threshold struct {
	T float64
}

var _ Analyzer = (*Threshold)(nil)

// NewThreshold returns a fixed-threshold analyzer.
func NewThreshold(t float64) *Threshold { return &Threshold{T: t} }

// ProcessValue implements Analyzer.
func (a *Threshold) ProcessValue(sim float64) State {
	if sim >= a.T {
		return InPhase
	}
	return Transition
}

// Boundary returns the analyzer's current accept threshold, enabling the
// detector's confidence reporting.
func (a *Threshold) Boundary() float64 { return a.T }

// ResetStats implements Analyzer (stateless, no-op).
func (a *Threshold) ResetStats() {}

// UpdateStats implements Analyzer (stateless, no-op).
func (a *Threshold) UpdateStats(float64) {}

// Hysteresis is an additional framework instantiation beyond the paper's
// two analyzer families: it uses distinct enter and exit thresholds
// (enter >= exit), so a phase begins only on strong similarity but
// survives moderate dips — the classic debouncing scheme for noisy
// signals. With Enter == Exit it degenerates to Threshold.
type Hysteresis struct {
	Enter, Exit float64

	inPhase bool
}

var _ Analyzer = (*Hysteresis)(nil)

// NewHysteresis returns a two-threshold analyzer. It panics if
// enter < exit (a construction error: the phase could never be left).
func NewHysteresis(enter, exit float64) *Hysteresis {
	if enter < exit {
		panic("core: hysteresis enter threshold below exit threshold")
	}
	return &Hysteresis{Enter: enter, Exit: exit}
}

// ProcessValue implements Analyzer.
func (a *Hysteresis) ProcessValue(sim float64) State {
	if a.inPhase {
		a.inPhase = sim >= a.Exit
	} else {
		a.inPhase = sim >= a.Enter
	}
	if a.inPhase {
		return InPhase
	}
	return Transition
}

// Boundary returns the currently active threshold, enabling confidence
// reporting.
func (a *Hysteresis) Boundary() float64 {
	if a.inPhase {
		return a.Exit
	}
	return a.Enter
}

// ResetStats implements Analyzer. The detector resets stats at phase
// *start*, so the in-phase flag is set, keeping the analyzer's view
// aligned with the detector's.
func (a *Hysteresis) ResetStats() { a.inPhase = true }

// UpdateStats implements Analyzer (no running statistics).
func (a *Hysteresis) UpdateStats(float64) {}

// Average is the paper's adaptive analyzer: it keeps a running average of
// the similarity values of the current phase and reports P while the
// incoming value stays within Delta below that average. Before any
// in-phase history exists, the entry threshold is 1-Delta — the natural
// bootstrap, since a perfectly stable phase has similarity 1 and the
// analyzer accepts values up to Delta below the expected level.
type Average struct {
	Delta float64

	count int64
	sum   float64
}

var _ Analyzer = (*Average)(nil)

// NewAverage returns an adaptive running-average analyzer with the given
// delta.
func NewAverage(delta float64) *Average { return &Average{Delta: delta} }

// ProcessValue implements Analyzer.
func (a *Average) ProcessValue(sim float64) State {
	threshold := 1 - a.Delta
	if a.count > 0 {
		threshold = a.sum/float64(a.count) - a.Delta
	}
	if sim >= threshold {
		return InPhase
	}
	return Transition
}

// Boundary returns the analyzer's current accept threshold, enabling the
// detector's confidence reporting.
func (a *Average) Boundary() float64 {
	if a.count > 0 {
		return a.sum/float64(a.count) - a.Delta
	}
	return 1 - a.Delta
}

// ResetStats implements Analyzer: a new phase starts with no history.
func (a *Average) ResetStats() {
	a.count = 0
	a.sum = 0
}

// UpdateStats implements Analyzer: fold the value into the running
// average for the current phase.
func (a *Average) UpdateStats(sim float64) {
	a.count++
	a.sum += sim
}
