package sweep

import (
	"testing"

	"opd/internal/baseline"
	"opd/internal/core"
	"opd/internal/interval"
	"opd/internal/trace"
)

func el(off int) trace.Branch { return trace.MakeBranch(0, off, true) }

func testTrace() trace.Trace {
	var tr trace.Trace
	for r := 0; r < 3; r++ {
		for i := 0; i < 200; i++ {
			tr = append(tr, el(1+r))
		}
	}
	return tr
}

func testSolution(n int64) *baseline.Solution {
	return &baseline.Solution{
		MPL:      100,
		TraceLen: n,
		Phases: []interval.Interval{
			{Start: 0, End: 200}, {Start: 200, End: 400}, {Start: 400, End: 600},
		},
	}
}

func TestEnumerateCounts(t *testing.T) {
	s := PaperSpace([]int{100, 200})
	configs := s.Enumerate()
	// 2 CW x (constant 2x10 + fixed 2x10 + adaptive 2x10x1) = 2 x 60
	if len(configs) != 120 {
		t.Errorf("enumerated %d configs, want 120", len(configs))
	}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.ID(), err)
		}
	}
	// Full anchoring variants quadruple the adaptive members.
	s.AnchorResize = AllAnchorResize()
	if got := len(s.Enumerate()); got != 2*(20+20+80) {
		t.Errorf("with all anchoring variants: %d, want 240", got)
	}
	// IDs must be unique.
	seen := map[string]bool{}
	for _, c := range s.Enumerate() {
		id := c.ID()
		if seen[id] {
			t.Errorf("duplicate config ID %q", id)
		}
		seen[id] = true
	}
}

func TestFamilyClassification(t *testing.T) {
	fi := core.FixedInterval(100, core.UnweightedModel, core.ThresholdAnalyzer, 0.5)
	if Family(fi) != FamilyFixedInterval {
		t.Error("fixed interval misclassified")
	}
	con := core.Config{CWSize: 100, SkipFactor: 1, TW: core.ConstantTW,
		Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.5}
	if Family(con) != FamilyConstant {
		t.Error("constant misclassified")
	}
	ad := con
	ad.TW = core.AdaptiveTW
	if Family(ad) != FamilyAdaptive {
		t.Error("adaptive misclassified")
	}
	for _, f := range []WindowFamily{FamilyConstant, FamilyAdaptive, FamilyFixedInterval} {
		if f.String() == "" {
			t.Error("empty family name")
		}
	}
}

func TestRunConfigsParallelMatchesSerial(t *testing.T) {
	tr := testTrace()
	configs := PaperSpace([]int{20, 50}).Enumerate()
	serial := RunConfigs(tr, configs, 1)
	parallel := RunConfigs(tr, configs, 4)
	for i := range configs {
		if len(serial[i].Phases) != len(parallel[i].Phases) {
			t.Fatalf("config %s: parallel run diverges", configs[i].ID())
		}
		for j := range serial[i].Phases {
			if serial[i].Phases[j] != parallel[i].Phases[j] {
				t.Fatalf("config %s: phase %d differs", configs[i].ID(), j)
			}
		}
		if serial[i].Config.ID() != parallel[i].Config.ID() {
			t.Fatal("run order not preserved")
		}
	}
}

// noisyTrace builds a deterministic phase-structured trace with enough
// site churn to exercise anchoring, clearing, and both models.
func noisyTrace(n int) trace.Trace {
	rng := int64(42)
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	var tr trace.Trace
	for len(tr) < n {
		site := next(30)
		run := next(80) + 1
		for i := 0; i < run && len(tr) < n; i++ {
			tr = append(tr, el(site))
		}
	}
	return tr
}

// TestInternedSweepMatchesMapSweep pins the shared-intern engine to the
// legacy per-config map path over the full paper config enumeration
// (all anchoring variants included): identical phases, adjusted phases,
// and similarity counts for every configuration.
func TestInternedSweepMatchesMapSweep(t *testing.T) {
	tr := noisyTrace(3000)
	s := PaperSpace([]int{20, 50})
	s.AnchorResize = AllAnchorResize()
	configs := s.Enumerate()
	legacy := RunConfigsMap(tr, configs, 0)
	interned := RunConfigs(tr, configs, 0)
	for i := range configs {
		a, b := legacy[i], interned[i]
		if a.SimComputations != b.SimComputations {
			t.Errorf("%s: %d vs %d similarity computations", configs[i].ID(), a.SimComputations, b.SimComputations)
		}
		if len(a.Phases) != len(b.Phases) || len(a.AdjustedPhases) != len(b.AdjustedPhases) {
			t.Fatalf("%s: phase counts diverge (%d/%d vs %d/%d)", configs[i].ID(),
				len(a.Phases), len(a.AdjustedPhases), len(b.Phases), len(b.AdjustedPhases))
		}
		for j := range a.Phases {
			if a.Phases[j] != b.Phases[j] {
				t.Fatalf("%s: phase %d: map %v vs interned %v", configs[i].ID(), j, a.Phases[j], b.Phases[j])
			}
		}
		for j := range a.AdjustedPhases {
			if a.AdjustedPhases[j] != b.AdjustedPhases[j] {
				t.Fatalf("%s: adjusted phase %d diverges", configs[i].ID(), j)
			}
		}
	}
}

// TestRunInternedSharesStream checks that RunInterned leaves the shared
// ID stream untouched (workers consume it read-only and concurrently).
func TestRunInternedSharesStream(t *testing.T) {
	tr := noisyTrace(1500)
	in := trace.Intern(tr)
	before := append([]int32(nil), in.IDs()...)
	RunInterned(in, PaperSpace([]int{20}).Enumerate(), 4, nil)
	for i, id := range in.IDs() {
		if id != before[i] {
			t.Fatalf("shared ID stream mutated at %d", i)
		}
	}
}

func TestBestPicksHighestScore(t *testing.T) {
	tr := testTrace()
	sol := testSolution(int64(len(tr)))
	configs := PaperSpace([]int{20, 50}).Enumerate()
	runs := RunConfigs(tr, configs, 0)
	best, bestRun, ok := Best(runs, sol, false)
	if !ok {
		t.Fatal("Best found nothing")
	}
	for _, r := range runs {
		if got := r.Score(sol, false); got.Score > best.Score {
			t.Errorf("run %s scores %f > best %f", r.Config.ID(), got.Score, best.Score)
		}
	}
	if best.Score <= 0.5 {
		t.Errorf("best score %f suspiciously low on a cleanly phased trace", best.Score)
	}
	if err := bestRun.Config.Validate(); err != nil {
		t.Errorf("best run has invalid config: %v", err)
	}
	if _, _, ok := Best(nil, sol, false); ok {
		t.Error("Best on empty runs reported ok")
	}
}

func TestFilter(t *testing.T) {
	configs := PaperSpace([]int{20}).Enumerate()
	runs := make([]Run, len(configs))
	for i, c := range configs {
		runs[i] = Run{Config: c}
	}
	adaptive := Filter(runs, func(c core.Config) bool { return Family(c) == FamilyAdaptive })
	if len(adaptive) != 20 {
		t.Errorf("filtered %d adaptive runs, want 20", len(adaptive))
	}
}

func TestAdjustedScoreUsesAdjustedPhases(t *testing.T) {
	tr := testTrace()
	sol := testSolution(int64(len(tr)))
	cfg := core.Config{CWSize: 20, SkipFactor: 1, TW: core.AdaptiveTW,
		Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6}
	runs := RunConfigs(tr, []core.Config{cfg}, 1)
	raw := runs[0].Score(sol, false)
	adj := runs[0].Score(sol, true)
	// Anchor-corrected starts recover the late-detection loss, so the
	// adjusted correlation must be at least as good.
	if adj.Correlation < raw.Correlation-1e-9 {
		t.Errorf("adjusted correlation %f worse than raw %f", adj.Correlation, raw.Correlation)
	}
}
