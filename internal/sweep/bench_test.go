package sweep

import (
	"testing"

	"opd/internal/core"
	"opd/internal/trace"
)

// BenchmarkSweepMapPath runs the whole sweep on the legacy path: every
// configuration re-interns the trace through its own map.
func BenchmarkSweepMapPath(b *testing.B) {
	tr := noisyTrace(50000)
	s := PaperSpace([]int{100, 500})
	s.AnchorResize = AllAnchorResize()
	configs := s.Enumerate()
	b.SetBytes(int64(len(tr)) * int64(len(configs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunConfigsMap(tr, configs, 0)
	}
}

// BenchmarkSweepInterned runs the same sweep on the shared-intern engine:
// one hash pass, dense-ID consumption, pooled buffers.
func BenchmarkSweepInterned(b *testing.B) {
	tr := noisyTrace(50000)
	s := PaperSpace([]int{100, 500})
	s.AnchorResize = AllAnchorResize()
	configs := s.Enumerate()
	b.SetBytes(int64(len(tr)) * int64(len(configs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunConfigsTelemetry(tr, configs, 0, nil)
	}
}

// hiCardTrace builds a trace with short stable runs drawn from a large
// site pool — the regime of whole-program branch profiles, where a
// per-config intern map outgrows the cache while the shared-intern
// engine's dense counters stay compact.
func hiCardTrace(n, sites int) trace.Trace {
	rng := int64(42)
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	var tr trace.Trace
	for len(tr) < n {
		site := next(sites)
		run := next(8) + 1
		for i := 0; i < run && len(tr) < n; i++ {
			tr = append(tr, el(site))
		}
	}
	return tr
}

// mapBoundConfigs filters the enumeration to the map-lookup-bound family:
// unweighted model, skip factor 1 — every element costs O(1) window
// arithmetic, so per-element interning is the dominant term.
func mapBoundConfigs(configs []core.Config) []core.Config {
	var out []core.Config
	for _, c := range configs {
		if c.Model == core.UnweightedModel && c.SkipFactor == 1 {
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkSweepMapPathHiCard / InternedHiCard compare the two engines on
// the map-lookup-bound family over a high-cardinality trace — the
// workload the shared-intern engine exists for.
func BenchmarkSweepMapPathHiCard(b *testing.B) {
	tr := hiCardTrace(400000, 100000)
	s := PaperSpace([]int{100, 500})
	s.AnchorResize = AllAnchorResize()
	configs := mapBoundConfigs(s.Enumerate())
	b.SetBytes(int64(len(tr)) * int64(len(configs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunConfigsMap(tr, configs, 0)
	}
}

func BenchmarkSweepInternedHiCard(b *testing.B) {
	tr := hiCardTrace(400000, 100000)
	s := PaperSpace([]int{100, 500})
	s.AnchorResize = AllAnchorResize()
	configs := mapBoundConfigs(s.Enumerate())
	b.SetBytes(int64(len(tr)) * int64(len(configs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunConfigsTelemetry(tr, configs, 0, nil)
	}
}

// BenchmarkSweepInternedPreinterned isolates the steady-state sweep cost
// by hoisting even the single interning pass out of the timed region —
// the regime of the experiment pipeline, which caches interned traces
// across experiments.
func BenchmarkSweepInternedPreinterned(b *testing.B) {
	tr := noisyTrace(50000)
	in := trace.Intern(tr)
	s := PaperSpace([]int{100, 500})
	s.AnchorResize = AllAnchorResize()
	configs := s.Enumerate()
	b.SetBytes(int64(len(tr)) * int64(len(configs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunInterned(in, configs, 0, nil)
	}
}
