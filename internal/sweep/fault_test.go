package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"opd/internal/core"
	"opd/internal/faultinject"
	"opd/internal/telemetry"
	"opd/internal/trace"
)

// chaosBuilder returns an Options.NewDetector that builds the config at
// the target index with its model wrapped by wrap, and every other config
// normally. The wrapped detector goes through the interface-dispatch
// model path, which the engine equivalence tests pin to the fast path.
func chaosBuilder(configs []core.Config, target int, wrap func(core.Model) core.Model) func(core.Config, *core.SweepPool) (*core.Detector, error) {
	targetCfg := configs[target]
	return func(cfg core.Config, pool *core.SweepPool) (*core.Detector, error) {
		if cfg != targetCfg {
			return cfg.NewPooled(pool)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		model := core.NewSetModel(cfg.Model, cfg.CWSize, cfg.TWSize, cfg.TW, cfg.Anchor, cfg.Resize)
		var an core.Analyzer
		if cfg.Analyzer == core.ThresholdAnalyzer {
			an = core.NewThreshold(cfg.Param)
		} else {
			an = core.NewAverage(cfg.Param)
		}
		return core.NewDetector(wrap(model), an, cfg.SkipFactor), nil
	}
}

// all240 enumerates the full paper space with every anchoring variant:
// 240 configurations, the scale the acceptance criterion names.
func all240() []core.Config {
	s := PaperSpace([]int{20, 50})
	s.AnchorResize = AllAnchorResize()
	return s.Enumerate()
}

func requireSameRun(t *testing.T, id string, got, want Run) {
	t.Helper()
	if got.SimComputations != want.SimComputations {
		t.Fatalf("%s: %d vs %d similarity computations", id, got.SimComputations, want.SimComputations)
	}
	if len(got.Phases) != len(want.Phases) || len(got.AdjustedPhases) != len(want.AdjustedPhases) {
		t.Fatalf("%s: phase counts diverge", id)
	}
	for j := range want.Phases {
		if got.Phases[j] != want.Phases[j] {
			t.Fatalf("%s: phase %d: %v vs %v", id, j, got.Phases[j], want.Phases[j])
		}
	}
	for j := range want.AdjustedPhases {
		if got.AdjustedPhases[j] != want.AdjustedPhases[j] {
			t.Fatalf("%s: adjusted phase %d diverges", id, j)
		}
	}
}

// TestPanicIsolatedToOneRun injects a panicking model into one
// configuration of a 240-config sweep: that Run must carry a *PanicError
// and the other 239 must complete bit-identical to a clean sweep.
func TestPanicIsolatedToOneRun(t *testing.T) {
	tr := noisyTrace(3000)
	in := trace.Intern(tr)
	configs := all240()
	clean := RunInterned(in, configs, 0, nil)

	const target = 117
	reg := telemetry.NewRegistry()
	probe := telemetry.NewSweepProbe(reg)
	faulty, err := RunInternedContext(context.Background(), in, configs, Options{
		Probe: probe,
		NewDetector: chaosBuilder(configs, target, func(m core.Model) core.Model {
			return faultinject.NewPanicModel(m, 3, "injected fault")
		}),
	})
	if err != nil {
		t.Fatalf("sweep error: %v", err)
	}
	if len(faulty) != len(configs) {
		t.Fatalf("got %d runs, want %d", len(faulty), len(configs))
	}
	var pe *PanicError
	if !errors.As(faulty[target].Err, &pe) {
		t.Fatalf("target run err = %v, want *PanicError", faulty[target].Err)
	}
	if pe.Value != "injected fault" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}
	if faulty[target].OK() || len(faulty[target].Phases) != 0 {
		t.Error("panicked run must not report phases")
	}
	for i := range configs {
		if i == target {
			continue
		}
		if faulty[i].Err != nil {
			t.Fatalf("run %d (%s) carries error %v", i, configs[i].ID(), faulty[i].Err)
		}
		requireSameRun(t, configs[i].ID(), faulty[i], clean[i])
	}
	sum := Summarize(faulty)
	if sum.Completed != 239 || sum.Failed != 1 || sum.Aborted != 0 {
		t.Errorf("summary = %v", sum)
	}
	snap := findCounter(t, reg, telemetry.MetricSweepRunPanics)
	if snap != 1 {
		t.Errorf("%s = %v, want 1", telemetry.MetricSweepRunPanics, snap)
	}
}

// findCounter returns the summed value of a counter family.
func findCounter(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	var total float64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// TestInvalidConfigYieldsErrNotPanic covers configurations arriving from
// external input: the sweep must record a validation error on the Run
// instead of panicking.
func TestInvalidConfigYieldsErrNotPanic(t *testing.T) {
	tr := testTrace()
	bad := core.Config{CWSize: -5, SkipFactor: 1, Model: core.UnweightedModel,
		Analyzer: core.ThresholdAnalyzer, Param: 0.6}
	good := core.Config{CWSize: 20, SkipFactor: 1, TW: core.ConstantTW,
		Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6}
	runs := RunConfigs(tr, []core.Config{good, bad, good}, 2)
	if runs[0].Err != nil || runs[2].Err != nil {
		t.Fatalf("valid configs errored: %v / %v", runs[0].Err, runs[2].Err)
	}
	if runs[1].Err == nil {
		t.Fatal("invalid config did not surface an error")
	}
	if runs[1].Err.Error() == "" || bad.Validate() == nil {
		t.Fatal("validation error missing")
	}
	// The legacy map path gets the same treatment.
	mapRuns := RunConfigsMap(tr, []core.Config{good, bad}, 1)
	if mapRuns[0].Err != nil || mapRuns[1].Err == nil {
		t.Fatalf("map path: %v / %v", mapRuns[0].Err, mapRuns[1].Err)
	}
}

// TestCancelMidSweepReturnsPartialResults cancels a sweep of slow
// detectors partway through: the engine must return promptly with every
// run slot populated in input order — completed runs bit-identical to a
// clean sweep, the rest marked aborted.
func TestCancelMidSweepReturnsPartialResults(t *testing.T) {
	tr := noisyTrace(2000)
	in := trace.Intern(tr)
	configs := PaperSpace([]int{20}).Enumerate()
	clean := RunInterned(in, configs, 0, nil)

	reg := telemetry.NewRegistry()
	probe := telemetry.NewSweepProbe(reg)
	ctx, cancel := context.WithCancel(context.Background())
	slowAll := func(cfg core.Config, pool *core.SweepPool) (*core.Detector, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		model := core.NewSetModel(cfg.Model, cfg.CWSize, cfg.TWSize, cfg.TW, cfg.Anchor, cfg.Resize)
		var an core.Analyzer
		if cfg.Analyzer == core.ThresholdAnalyzer {
			an = core.NewThreshold(cfg.Param)
		} else {
			an = core.NewAverage(cfg.Param)
		}
		return core.NewDetector(faultinject.NewSlowModel(model, 200*time.Microsecond), an, cfg.SkipFactor), nil
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	runs, err := RunInternedContext(ctx, in, configs, Options{Workers: 2, Probe: probe, NewDetector: slowAll})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
	// "Prompt" here means bounded by one group's stall, not the sweep's
	// full runtime; the margin is generous to stay robust on loaded CI.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled sweep took %v to return", elapsed)
	}
	if len(runs) != len(configs) {
		t.Fatalf("got %d runs, want %d", len(runs), len(configs))
	}
	sum := Summarize(runs)
	if sum.Aborted == 0 {
		t.Error("cancellation aborted no runs")
	}
	for i, r := range runs {
		if r.Config.ID() != configs[i].ID() {
			t.Fatalf("run %d out of input order", i)
		}
		switch {
		case r.OK():
			requireSameRun(t, configs[i].ID(), r, clean[i])
		case !r.Aborted():
			t.Fatalf("run %d: unexpected non-abort error %v", i, r.Err)
		default:
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("aborted run %d does not wrap context.Canceled: %v", i, r.Err)
			}
		}
	}
	if got := findCounter(t, reg, telemetry.MetricSweepRunsAborted); got != float64(sum.Aborted) {
		t.Errorf("%s = %v, want %d", telemetry.MetricSweepRunsAborted, got, sum.Aborted)
	}
}

// TestStalledModelAbortsOnCancel stalls one detector on a gate: after the
// sweep's context is cancelled and the gate released, the engine must
// come back with the stalled run aborted and the rest intact.
func TestStalledModelAbortsOnCancel(t *testing.T) {
	tr := noisyTrace(1500)
	in := trace.Intern(tr)
	configs := PaperSpace([]int{20}).Enumerate()
	clean := RunInterned(in, configs, 0, nil)

	const target = 7
	gate := make(chan struct{})
	stalled := make(chan struct{})
	build := chaosBuilder(configs, target, func(m core.Model) core.Model {
		// The outer hook announces the stall the instant before the inner
		// shim blocks on the gate, so the test cancels mid-stall for real.
		return faultinject.NewHookModel(
			faultinject.NewStallModel(m, 2, gate),
			func(call int) {
				if call == 2 {
					close(stalled)
				}
			})
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runs []Run
	var err error
	go func() {
		defer close(done)
		runs, err = RunInternedContext(ctx, in, configs, Options{Workers: 4, NewDetector: build})
	}()
	<-stalled // the target detector is now blocked mid-trace
	cancel()
	close(gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep did not return after cancel + gate release")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v", err)
	}
	if !runs[target].Aborted() {
		t.Fatalf("stalled run err = %v, want aborted", runs[target].Err)
	}
	for i, r := range runs {
		if r.OK() {
			requireSameRun(t, configs[i].ID(), r, clean[i])
		}
	}
}

// TestDeadlineExpiryAborts runs a slow sweep under a short deadline.
func TestDeadlineExpiryAborts(t *testing.T) {
	tr := noisyTrace(2000)
	in := trace.Intern(tr)
	configs := PaperSpace([]int{20}).Enumerate()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	slowAll := func(cfg core.Config, pool *core.SweepPool) (*core.Detector, error) {
		d, err := cfg.NewPooled(pool)
		if err != nil {
			return nil, err
		}
		time.Sleep(time.Millisecond) // pace construction so the deadline lands mid-sweep
		return d, nil
	}
	runs, err := RunInternedContext(ctx, in, configs, Options{Workers: 1, NewDetector: slowAll})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sweep error = %v, want DeadlineExceeded", err)
	}
	if Summarize(runs).Aborted == 0 {
		t.Error("deadline aborted no runs")
	}
	for _, r := range runs {
		if !r.OK() && !errors.Is(r.Err, ErrAborted) {
			t.Fatalf("unexpected error %v", r.Err)
		}
	}
}
