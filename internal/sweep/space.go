package sweep

import "opd/internal/core"

// AnalyzerSetting pairs an analyzer kind with its parameter.
type AnalyzerSetting struct {
	Kind  core.AnalyzerKind
	Param float64
}

// PaperAnalyzers returns the ten analyzer settings the paper sweeps:
// thresholds 0.5, 0.6, 0.7, 0.8 and average deltas 0.01, 0.05, 0.1, 0.2,
// 0.3, 0.4.
func PaperAnalyzers() []AnalyzerSetting {
	return []AnalyzerSetting{
		{core.ThresholdAnalyzer, 0.5},
		{core.ThresholdAnalyzer, 0.6},
		{core.ThresholdAnalyzer, 0.7},
		{core.ThresholdAnalyzer, 0.8},
		{core.AverageAnalyzer, 0.01},
		{core.AverageAnalyzer, 0.05},
		{core.AverageAnalyzer, 0.1},
		{core.AverageAnalyzer, 0.2},
		{core.AverageAnalyzer, 0.3},
		{core.AverageAnalyzer, 0.4},
	}
}

// WindowFamily identifies the three trailing-window schemes the paper
// contrasts.
type WindowFamily uint8

const (
	// FamilyConstant is the Constant TW with skip factor 1.
	FamilyConstant WindowFamily = iota
	// FamilyAdaptive is the Adaptive TW with skip factor 1.
	FamilyAdaptive
	// FamilyFixedInterval is the prior-work scheme: Constant TW with
	// skipFactor = CW size = TW size.
	FamilyFixedInterval
)

// String names the family.
func (f WindowFamily) String() string {
	switch f {
	case FamilyConstant:
		return "Constant TW"
	case FamilyAdaptive:
		return "Adaptive TW"
	case FamilyFixedInterval:
		return "Fixed Interval"
	}
	return "WindowFamily(?)"
}

// Family classifies a configuration into its window family.
func Family(c core.Config) WindowFamily {
	if c.TW == core.AdaptiveTW {
		return FamilyAdaptive
	}
	if c.IsFixedInterval() {
		return FamilyFixedInterval
	}
	return FamilyConstant
}

// Space enumerates a detector configuration family as the cross product
// of its axes.
type Space struct {
	// CWSizes are the current-window sizes to sweep.
	CWSizes []int
	// Families are the window families to include.
	Families []WindowFamily
	// Models are the similarity models to include.
	Models []core.ModelKind
	// Analyzers are the analyzer settings to include.
	Analyzers []AnalyzerSetting
	// AnchorResize lists the (anchor, resize) pairs applied to Adaptive
	// TW members; empty means {(RN, Slide)}, the defaults the paper
	// selects in §5.
	AnchorResize []AnchorResize
}

// AnchorResize is one Adaptive TW anchoring variant.
type AnchorResize struct {
	Anchor core.AnchorPolicy
	Resize core.ResizePolicy
}

// AllAnchorResize returns the four anchoring variants of §5.
func AllAnchorResize() []AnchorResize {
	return []AnchorResize{
		{core.AnchorRN, core.ResizeSlide},
		{core.AnchorRN, core.ResizeMove},
		{core.AnchorLNN, core.ResizeSlide},
		{core.AnchorLNN, core.ResizeMove},
	}
}

// PaperSpace returns the sweep the paper's main analysis uses over the
// given CW sizes: all three window families, both models, all ten
// analyzers, with the default RN/Slide anchoring for the Adaptive family.
func PaperSpace(cwSizes []int) Space {
	return Space{
		CWSizes:   cwSizes,
		Families:  []WindowFamily{FamilyConstant, FamilyAdaptive, FamilyFixedInterval},
		Models:    []core.ModelKind{core.UnweightedModel, core.WeightedModel},
		Analyzers: PaperAnalyzers(),
	}
}

// Enumerate expands the space into concrete configurations.
func (s Space) Enumerate() []core.Config {
	anchorResize := s.AnchorResize
	if len(anchorResize) == 0 {
		anchorResize = []AnchorResize{{core.AnchorRN, core.ResizeSlide}}
	}
	var configs []core.Config
	for _, cw := range s.CWSizes {
		for _, fam := range s.Families {
			for _, model := range s.Models {
				for _, an := range s.Analyzers {
					switch fam {
					case FamilyFixedInterval:
						configs = append(configs, core.FixedInterval(cw, model, an.Kind, an.Param))
					case FamilyConstant:
						configs = append(configs, core.Config{
							CWSize: cw, TWSize: cw, SkipFactor: 1, TW: core.ConstantTW,
							Model: model, Analyzer: an.Kind, Param: an.Param,
						})
					case FamilyAdaptive:
						for _, ar := range anchorResize {
							configs = append(configs, core.Config{
								CWSize: cw, TWSize: cw, SkipFactor: 1, TW: core.AdaptiveTW,
								Anchor: ar.Anchor, Resize: ar.Resize,
								Model: model, Analyzer: an.Kind, Param: an.Param,
							})
						}
					}
				}
			}
		}
	}
	return configs
}
