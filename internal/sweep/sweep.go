// Package sweep evaluates families of detector configurations against
// traces and oracle solutions. It exploits the key structural fact of the
// evaluation: a detector's output is independent of the MPL (only the
// oracle depends on it), so each configuration runs over a trace once and
// is then scored against every MPL's baseline solution.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"opd/internal/baseline"
	"opd/internal/core"
	"opd/internal/interval"
	"opd/internal/score"
	"opd/internal/telemetry"
	"opd/internal/trace"
)

// ErrAborted marks a Run abandoned because the sweep's context was
// cancelled before (or while) the run executed. The context's own error
// is wrapped, so errors.Is(run.Err, context.Canceled) also holds.
var ErrAborted = errors.New("sweep: run aborted")

// A PanicError is a panic recovered from detector/model code during a
// sweep run, isolated to that run instead of crashing the whole sweep.
type PanicError struct {
	// Value is the value the detector code panicked with.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error renders the panic value; the stack is available on the struct.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: detector panicked: %v", e.Value)
}

// A Run is the MPL-independent output of one detector over one trace.
type Run struct {
	Config          core.Config
	Phases          []interval.Interval
	AdjustedPhases  []interval.Interval
	SimComputations int64
	// Elements is the trace length the detector consumed.
	Elements int64
	// Elapsed is the wall-clock time of the detector's pass over the
	// trace (detector work only; excludes scoring).
	Elapsed time.Duration
	// Err is non-nil when the run did not complete: the configuration
	// failed validation, the detector panicked (a *PanicError), or the
	// sweep was cancelled before the run finished (wraps ErrAborted and
	// the context error). A failed run carries no phases and must not be
	// scored.
	Err error
}

// OK reports whether the run completed and its phases are scorable.
func (r Run) OK() bool { return r.Err == nil }

// Aborted reports whether the run was abandoned by sweep cancellation
// (as opposed to failing in its own right).
func (r Run) Aborted() bool { return errors.Is(r.Err, ErrAborted) }

// SimPer1000 returns the run's similarity computations per thousand
// consumed elements — the overhead rate the skip factor trades against
// accuracy.
func (r Run) SimPer1000() float64 {
	if r.Elements == 0 {
		return 0
	}
	return 1000 * float64(r.SimComputations) / float64(r.Elements)
}

// A Summary counts a sweep's outcomes: how many runs completed, how many
// failed on their own (bad config or recovered panic), and how many were
// abandoned by cancellation.
type Summary struct {
	Completed int
	Failed    int
	Aborted   int
}

// String renders e.g. "237/240 completed, 1 failed, 2 aborted".
func (s Summary) String() string {
	total := s.Completed + s.Failed + s.Aborted
	return fmt.Sprintf("%d/%d completed, %d failed, %d aborted", s.Completed, total, s.Failed, s.Aborted)
}

// Summarize tallies run outcomes.
func Summarize(runs []Run) Summary {
	var s Summary
	for _, r := range runs {
		switch {
		case r.OK():
			s.Completed++
		case r.Aborted():
			s.Aborted++
		default:
			s.Failed++
		}
	}
	return s
}

// Options tunes a sweep execution.
type Options struct {
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Probe, when non-nil, records interning, per-run, error/abort, and
	// pool-reuse telemetry.
	Probe *telemetry.SweepProbe
	// NewDetector overrides detector construction — the fault-injection
	// seam, used by tests to substitute chaos models for selected
	// configurations. nil means cfg.NewPooled(pool).
	NewDetector func(cfg core.Config, pool *core.SweepPool) (*core.Detector, error)
}

// RunConfigs executes every configuration over the trace, in parallel
// across workers (0 means GOMAXPROCS), and returns the runs in input
// order. A configuration that fails validation, or whose detector
// panics, yields a Run carrying the error rather than crashing the
// sweep; the panic-tolerant enumerators' helper constructors
// (Config.MustNew and friends) remain for callers that want invalid
// configs to be fatal.
//
// The trace is interned once — one hash pass total — and every detector
// consumes skip-factor slices of the shared dense-ID stream, with window
// counters sized up-front from the symbol-table cardinality and pooled
// across runs. See RunInterned for sweeping an already-interned trace.
func RunConfigs(tr trace.Trace, configs []core.Config, workers int) []Run {
	return RunConfigsTelemetry(tr, configs, workers, nil)
}

// RunConfigsTelemetry is RunConfigs with a sweep probe: the interning
// pass and each completed run are recorded (counts, wall clock,
// similarity computations, pool reuse). A nil probe is equivalent to
// RunConfigs.
func RunConfigsTelemetry(tr trace.Trace, configs []core.Config, workers int, probe *telemetry.SweepProbe) []Run {
	return RunInterned(trace.Intern(tr), configs, workers, probe)
}

// RunInterned executes every configuration over a pre-interned trace.
// This is the sweep hot path: the representation cost (one hash lookup
// per element) was paid once at interning, so each of the N configured
// detectors runs in pure slice arithmetic over the shared ID stream, and
// a SweepPool recycles window buffers and counter slices between
// back-to-back runs. Results are in input order. Per-run failures land in
// Run.Err; see RunInternedContext for cancellation.
func RunInterned(in *trace.Interned, configs []core.Config, workers int, probe *telemetry.SweepProbe) []Run {
	runs, _ := RunInternedContext(context.Background(), in, configs, Options{Workers: workers, Probe: probe})
	return runs
}

// RunInternedContext is RunInterned under a context: the sweep observes
// cancellation between runs and (via core.RunTraceInternedContext)
// between skip-factor groups within a run, so a cancel or deadline
// returns promptly with partial results. The returned slice always has
// len(configs) entries in input order — completed runs are identical to
// an uncancelled sweep's, and runs that were cut short or never started
// carry an Err wrapping ErrAborted. The second return value is
// ctx.Err() at completion time (nil for a sweep that ran to the end).
//
// Each worker additionally isolates panics from detector/model code:
// a panicking configuration yields a Run with a *PanicError while every
// other run completes unaffected.
func RunInternedContext(ctx context.Context, in *trace.Interned, configs []core.Config, opts Options) ([]Run, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	probe := opts.Probe
	build := opts.NewDetector
	if build == nil {
		build = func(cfg core.Config, pool *core.SweepPool) (*core.Detector, error) {
			return cfg.NewPooled(pool)
		}
	}
	probe.Interned(int64(in.Len()), int64(in.Cardinality()))
	pool := core.NewSweepPool(in.Cardinality())
	runs := make([]Run, len(configs))
	// Buffered to len(configs): the producer enqueues the whole sweep
	// without ever blocking behind a slow worker.
	jobs := make(chan int, len(configs))
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	done := ctx.Done()
	var wg sync.WaitGroup
	elements := int64(in.Len())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if done != nil {
					select {
					case <-done:
						// Drain the queue, marking never-started runs
						// aborted so the result keeps input order and
						// length under cancellation.
						runs[i] = Run{Config: configs[i], Err: abortErr(ctx)}
						probe.RunAborted()
						continue
					default:
					}
				}
				runs[i] = runOne(ctx, in, configs[i], pool, build, elements, probe)
			}
		}()
	}
	wg.Wait()
	hits, misses := pool.Stats()
	probe.PoolStats(hits, misses)
	return runs, ctx.Err()
}

// abortErr wraps the context's error under ErrAborted.
func abortErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrAborted, context.Cause(ctx))
}

// runOne executes a single configuration, converting panics from
// detector/model code into the run's Err. A panicking detector's pooled
// buffers are deliberately NOT released — they may be mid-mutation — so
// the pool simply allocates fresh ones for a later run.
func runOne(ctx context.Context, in *trace.Interned, cfg core.Config,
	pool *core.SweepPool, build func(core.Config, *core.SweepPool) (*core.Detector, error),
	elements int64, probe *telemetry.SweepProbe) (run Run) {
	run.Config = cfg
	defer func() {
		if v := recover(); v != nil {
			run = Run{Config: cfg, Err: &PanicError{Value: v, Stack: debug.Stack()}}
			probe.RunError(true)
		}
	}()
	d, err := build(cfg, pool)
	if err != nil {
		run.Err = fmt.Errorf("sweep: config %s: %w", cfg.ID(), err)
		probe.RunError(false)
		return run
	}
	start := time.Now()
	if err := core.RunTraceInternedContext(ctx, d, in); err != nil {
		run.Err = abortErr(ctx)
		probe.RunAborted()
		return run
	}
	elapsed := time.Since(start)
	run.Phases = d.Phases()
	run.AdjustedPhases = d.AdjustedPhases()
	run.SimComputations = d.SimilarityComputations()
	run.Elements = elements
	run.Elapsed = elapsed
	d.ReleaseBuffers()
	probe.Run(elapsed.Seconds(), d.SimilarityComputations(), elements)
	return run
}

// RunConfigsMap is the legacy sweep path: every detector re-interns the
// trace through its own map[trace.Branch]int32, paying one hash lookup
// per element per configuration. Kept as the equivalence and benchmark
// baseline for the shared-intern engine; new callers want RunConfigs.
// Like the interned path, per-run failures (invalid configs, detector
// panics) land in Run.Err instead of crashing the sweep.
func RunConfigsMap(tr trace.Trace, configs []core.Config, workers int) []Run {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runs := make([]Run, len(configs))
	jobs := make(chan int, len(configs))
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runs[i] = runOneMap(tr, configs[i])
			}
		}()
	}
	wg.Wait()
	return runs
}

// runOneMap is runOne for the legacy map path.
func runOneMap(tr trace.Trace, cfg core.Config) (run Run) {
	run.Config = cfg
	defer func() {
		if v := recover(); v != nil {
			run = Run{Config: cfg, Err: &PanicError{Value: v, Stack: debug.Stack()}}
		}
	}()
	d, err := cfg.New()
	if err != nil {
		run.Err = fmt.Errorf("sweep: config %s: %w", cfg.ID(), err)
		return run
	}
	start := time.Now()
	core.RunTrace(d, tr)
	run.Phases = d.Phases()
	run.AdjustedPhases = d.AdjustedPhases()
	run.SimComputations = d.SimilarityComputations()
	run.Elements = int64(len(tr))
	run.Elapsed = time.Since(start)
	return run
}

// Score evaluates a run against one oracle solution. adjusted selects the
// anchor-corrected phase boundaries (Figure 8) instead of the raw ones.
func (r Run) Score(sol *baseline.Solution, adjusted bool) score.Result {
	phases := r.Phases
	if adjusted {
		phases = r.AdjustedPhases
	}
	return score.Evaluate(phases, sol)
}

// Best returns the highest combined score among the completed runs
// against the given solution, along with the achieving run. Failed and
// aborted runs are skipped — their empty phase lists must not be scored.
// ok is false when no run completed.
func Best(runs []Run, sol *baseline.Solution, adjusted bool) (best score.Result, bestRun Run, ok bool) {
	for _, r := range runs {
		if !r.OK() {
			continue
		}
		res := r.Score(sol, adjusted)
		if !ok || res.Score > best.Score {
			best, bestRun, ok = res, r, true
		}
	}
	return best, bestRun, ok
}

// Filter returns the runs whose configuration satisfies keep.
func Filter(runs []Run, keep func(core.Config) bool) []Run {
	var out []Run
	if keep == nil {
		return append(out, runs...)
	}
	for _, r := range runs {
		if keep(r.Config) {
			out = append(out, r)
		}
	}
	return out
}
