// Package sweep evaluates families of detector configurations against
// traces and oracle solutions. It exploits the key structural fact of the
// evaluation: a detector's output is independent of the MPL (only the
// oracle depends on it), so each configuration runs over a trace once and
// is then scored against every MPL's baseline solution.
package sweep

import (
	"runtime"
	"sync"
	"time"

	"opd/internal/baseline"
	"opd/internal/core"
	"opd/internal/interval"
	"opd/internal/score"
	"opd/internal/telemetry"
	"opd/internal/trace"
)

// A Run is the MPL-independent output of one detector over one trace.
type Run struct {
	Config          core.Config
	Phases          []interval.Interval
	AdjustedPhases  []interval.Interval
	SimComputations int64
	// Elements is the trace length the detector consumed.
	Elements int64
	// Elapsed is the wall-clock time of the detector's pass over the
	// trace (detector work only; excludes scoring).
	Elapsed time.Duration
}

// SimPer1000 returns the run's similarity computations per thousand
// consumed elements — the overhead rate the skip factor trades against
// accuracy.
func (r Run) SimPer1000() float64 {
	if r.Elements == 0 {
		return 0
	}
	return 1000 * float64(r.SimComputations) / float64(r.Elements)
}

// RunConfigs executes every configuration over the trace, in parallel
// across workers (0 means GOMAXPROCS), and returns the runs in input
// order. Invalid configurations panic: the sweep enumerators only produce
// valid ones, so an invalid config is a programming error.
//
// The trace is interned once — one hash pass total — and every detector
// consumes skip-factor slices of the shared dense-ID stream, with window
// counters sized up-front from the symbol-table cardinality and pooled
// across runs. See RunInterned for sweeping an already-interned trace.
func RunConfigs(tr trace.Trace, configs []core.Config, workers int) []Run {
	return RunConfigsTelemetry(tr, configs, workers, nil)
}

// RunConfigsTelemetry is RunConfigs with a sweep probe: the interning
// pass and each completed run are recorded (counts, wall clock,
// similarity computations, pool reuse). A nil probe is equivalent to
// RunConfigs.
func RunConfigsTelemetry(tr trace.Trace, configs []core.Config, workers int, probe *telemetry.SweepProbe) []Run {
	return RunInterned(trace.Intern(tr), configs, workers, probe)
}

// RunInterned executes every configuration over a pre-interned trace.
// This is the sweep hot path: the representation cost (one hash lookup
// per element) was paid once at interning, so each of the N configured
// detectors runs in pure slice arithmetic over the shared ID stream, and
// a SweepPool recycles window buffers and counter slices between
// back-to-back runs. Results are in input order.
func RunInterned(in *trace.Interned, configs []core.Config, workers int, probe *telemetry.SweepProbe) []Run {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	probe.Interned(int64(in.Len()), int64(in.Cardinality()))
	pool := core.NewSweepPool(in.Cardinality())
	runs := make([]Run, len(configs))
	// Buffered to len(configs): the producer enqueues the whole sweep
	// without ever blocking behind a slow worker.
	jobs := make(chan int, len(configs))
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	elements := int64(in.Len())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d := configs[i].MustNewPooled(pool)
				start := time.Now()
				core.RunTraceInterned(d, in)
				elapsed := time.Since(start)
				runs[i] = Run{
					Config:          configs[i],
					Phases:          d.Phases(),
					AdjustedPhases:  d.AdjustedPhases(),
					SimComputations: d.SimilarityComputations(),
					Elements:        elements,
					Elapsed:         elapsed,
				}
				d.ReleaseBuffers()
				probe.Run(elapsed.Seconds(), d.SimilarityComputations(), elements)
			}
		}()
	}
	wg.Wait()
	hits, misses := pool.Stats()
	probe.PoolStats(hits, misses)
	return runs
}

// RunConfigsMap is the legacy sweep path: every detector re-interns the
// trace through its own map[trace.Branch]int32, paying one hash lookup
// per element per configuration. Kept as the equivalence and benchmark
// baseline for the shared-intern engine; new callers want RunConfigs.
func RunConfigsMap(tr trace.Trace, configs []core.Config, workers int) []Run {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runs := make([]Run, len(configs))
	jobs := make(chan int, len(configs))
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d := configs[i].MustNew()
				start := time.Now()
				core.RunTrace(d, tr)
				runs[i] = Run{
					Config:          configs[i],
					Phases:          d.Phases(),
					AdjustedPhases:  d.AdjustedPhases(),
					SimComputations: d.SimilarityComputations(),
					Elements:        int64(len(tr)),
					Elapsed:         time.Since(start),
				}
			}
		}()
	}
	wg.Wait()
	return runs
}

// Score evaluates a run against one oracle solution. adjusted selects the
// anchor-corrected phase boundaries (Figure 8) instead of the raw ones.
func (r Run) Score(sol *baseline.Solution, adjusted bool) score.Result {
	phases := r.Phases
	if adjusted {
		phases = r.AdjustedPhases
	}
	return score.Evaluate(phases, sol)
}

// Best returns the highest combined score among the runs against the
// given solution, along with the achieving run. ok is false when runs is
// empty.
func Best(runs []Run, sol *baseline.Solution, adjusted bool) (best score.Result, bestRun Run, ok bool) {
	for _, r := range runs {
		res := r.Score(sol, adjusted)
		if !ok || res.Score > best.Score {
			best, bestRun, ok = res, r, true
		}
	}
	return best, bestRun, ok
}

// Filter returns the runs whose configuration satisfies keep.
func Filter(runs []Run, keep func(core.Config) bool) []Run {
	var out []Run
	for _, r := range runs {
		if keep(r.Config) {
			out = append(out, r)
		}
	}
	return out
}
