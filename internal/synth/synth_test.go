package synth

import (
	"testing"

	"opd/internal/trace"
	"opd/internal/vm"
)

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			branches, events, err := Run(b.Name, 1)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(branches) < 5000 {
				t.Errorf("trace too small: %d branches", len(branches))
			}
			if len(branches) > 500000 {
				t.Errorf("scale-1 trace suspiciously large: %d branches", len(branches))
			}
			if err := events.Validate(); err != nil {
				t.Errorf("call-loop trace invalid: %v", err)
			}
			loops, methods := events.Counts()
			if loops == 0 {
				t.Error("no loop executions recorded")
			}
			if methods == 0 {
				t.Error("no method invocations recorded")
			}
			// Branch times in events must be within the branch trace.
			for _, e := range events {
				if e.Time < 0 || e.Time > int64(len(branches)) {
					t.Fatalf("event %v outside trace of %d branches", e, len(branches))
				}
			}
		})
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	for _, name := range []string{"compress", "jess", "mpegaudio"} {
		b1, e1, err := Run(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		b2, e2, err := Run(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(b1) != len(b2) {
			t.Fatalf("%s: non-deterministic trace length %d vs %d", name, len(b1), len(b2))
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("%s: traces diverge at element %d", name, i)
			}
		}
		if len(e1) != len(e2) {
			t.Fatalf("%s: non-deterministic event count", name)
		}
	}
}

func TestScaleGrowsTrace(t *testing.T) {
	for _, name := range []string{"compress", "db", "jack"} {
		b1, _, err := Run(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		b3, _, err := Run(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(b3) < 2*len(b1) {
			t.Errorf("%s: scale 3 trace (%d) not ≳ 2x scale 1 trace (%d)", name, len(b3), len(b1))
		}
	}
}

func TestStructuralSignatures(t *testing.T) {
	recursionFree := map[string]bool{"compress": true, "db": true, "mpegaudio": true}
	for _, b := range All() {
		_, events, err := Run(b.Name, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Count recursion roots directly: method entries whose method is
		// not already on the dynamic stack but recurs beneath.
		roots := countRecursionRoots(events)
		if recursionFree[b.Name] && roots != 0 {
			t.Errorf("%s: expected no recursion, found %d roots", b.Name, roots)
		}
		if !recursionFree[b.Name] && roots == 0 {
			t.Errorf("%s: expected recursion roots, found none", b.Name)
		}
	}
}

// countRecursionRoots mirrors the paper's definition: an invocation of a
// method that later invokes itself (transitively) while no other instance
// of that method is on the stack.
func countRecursionRoots(events trace.Events) int {
	type entry struct {
		id        uint32
		recursive bool
	}
	var stack []entry
	onStack := map[uint32]int{}
	roots := 0
	for _, e := range events {
		switch e.Kind {
		case trace.MethodEnter:
			if onStack[e.ID] > 0 {
				// mark the outermost instance recursive
				for i := range stack {
					if stack[i].id == e.ID {
						stack[i].recursive = true
						break
					}
				}
			}
			stack = append(stack, entry{id: e.ID})
			onStack[e.ID]++
		case trace.MethodExit:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[e.ID]--
			if top.recursive && onStack[e.ID] == 0 {
				roots++
			}
		}
	}
	return roots
}

func TestSeededVariants(t *testing.T) {
	// Different seeds change the data-dependent element mix but not the
	// program structure: same static sites, similar (not identical)
	// traces, and valid call-loop structure.
	for _, name := range []string{"compress", "jess"} {
		b1, e1, err := RunSeeded(name, 1, 111)
		if err != nil {
			t.Fatal(err)
		}
		b2, e2, err := RunSeeded(name, 1, 222)
		if err != nil {
			t.Fatal(err)
		}
		if err := e1.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := e2.Validate(); err != nil {
			t.Fatal(err)
		}
		same := len(b1) == len(b2)
		if same {
			identical := true
			for i := range b1 {
				if b1[i] != b2[i] {
					identical = false
					break
				}
			}
			if identical {
				t.Errorf("%s: different seeds produced identical traces", name)
			}
		}
		// Structural envelope: lengths within 2x of each other.
		if len(b1) > 2*len(b2) || len(b2) > 2*len(b1) {
			t.Errorf("%s: seed changed trace size drastically: %d vs %d", name, len(b1), len(b2))
		}
	}
	// Run with the canonical seed equals Run.
	bA, _, err := Run("db", 1)
	if err != nil {
		t.Fatal(err)
	}
	bB, _, err := RunSeeded("db", 1, 998)
	if err != nil {
		t.Fatal(err)
	}
	if len(bA) != len(bB) {
		t.Errorf("canonical seed mismatch: %d vs %d", len(bA), len(bB))
	}
	if _, _, err := RunSeeded("nope", 1, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, _, err := RunSeeded("db", 0, 1); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("compress"); !ok {
		t.Error("ByName(compress) not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) unexpectedly found")
	}
	if got := len(Names()); got != 8 {
		t.Errorf("Names() has %d entries, want 8", got)
	}
	if _, _, err := Run("nope", 1); err == nil {
		t.Error("Run(nope) should fail")
	}
	if _, _, err := Run("db", 0); err == nil {
		t.Error("Run with scale 0 should fail")
	}
}

func TestDistinctSitesDifferAcrossPhases(t *testing.T) {
	// The detector can only tell phases apart if different program parts
	// touch different branch sites; sanity-check that each benchmark has a
	// healthy number of distinct sites.
	for _, b := range All() {
		branches, _, err := Run(b.Name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n := branches.DistinctSites(); n < 10 {
			t.Errorf("%s: only %d distinct branch sites", b.Name, n)
		}
	}
}

func TestProgramsVerify(t *testing.T) {
	for _, b := range All() {
		p := b.Build(1)
		if err := vm.Verify(p); err != nil {
			t.Errorf("%s: verify: %v", b.Name, err)
		}
	}
}
