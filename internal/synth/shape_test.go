package synth

import (
	"testing"

	"opd/internal/baseline"
)

// These tests pin each benchmark's *structural signature* against the
// trends of the paper's Table 1(b): the specific properties DESIGN.md
// claims the workloads were constructed to reproduce. They run at scale 4
// so mid-MPL structure exists.

func solve(t *testing.T, name string, scale int, mpl int64) *baseline.Solution {
	t.Helper()
	branches, events, err := Run(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := baseline.Compute(events, int64(len(branches)), mpl)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestCompressFewLargePhases(t *testing.T) {
	// compress: few, long, regular pass loops — phase count stays small
	// and stable across small MPLs, coverage stays high.
	s1 := solve(t, "compress", 4, 1000)
	s5 := solve(t, "compress", 4, 5000)
	if s1.NumPhases() > 16 {
		t.Errorf("compress at MPL 1K: %d phases, want few (pass-level)", s1.NumPhases())
	}
	if s1.NumPhases() != s5.NumPhases() {
		t.Logf("compress phases 1K=%d 5K=%d (informational)", s1.NumPhases(), s5.NumPhases())
	}
	if s1.PercentInPhase() < 90 {
		t.Errorf("compress coverage at 1K = %.1f%%, want high", s1.PercentInPhase())
	}
}

func TestMpegaudioManySmallPhases(t *testing.T) {
	// mpegaudio: the most phases at MPL 1K of the loop-dominated
	// benchmarks, collapsing to very few at large MPL.
	small := solve(t, "mpegaudio", 4, 1000)
	large := solve(t, "mpegaudio", 4, 50000)
	if small.NumPhases() < 30 {
		t.Errorf("mpegaudio at MPL 1K: %d phases, want many per-frame phases", small.NumPhases())
	}
	if large.NumPhases() > 4 {
		t.Errorf("mpegaudio at MPL 50K: %d phases, want coarse stream phases", large.NumPhases())
	}
	if small.NumPhases() < 8*large.NumPhases() {
		t.Errorf("mpegaudio phase collapse too weak: %d -> %d", small.NumPhases(), large.NumPhases())
	}
}

func TestDBHighCoverage(t *testing.T) {
	// db: loop-dominated; nearly everything is in phase at MPL 1K.
	s := solve(t, "db", 4, 1000)
	if s.PercentInPhase() < 95 {
		t.Errorf("db coverage at 1K = %.1f%%, want ~99%%", s.PercentInPhase())
	}
}

func TestJackCoverageDeclinesWithMPL(t *testing.T) {
	// jack: mid-sized pass CRIs that merge poorly — the in-phase fraction
	// falls as MPL grows through the pass-size range.
	low := solve(t, "jack", 4, 1000)
	high := solve(t, "jack", 4, 5000)
	if high.PercentInPhase() >= low.PercentInPhase() {
		t.Errorf("jack coverage did not decline: %.1f%% at 1K -> %.1f%% at 5K",
			low.PercentInPhase(), high.PercentInPhase())
	}
}

func TestJlexNearTotalCoverage(t *testing.T) {
	// jlex: a handful of big regular passes; ~97%+ of elements in phase
	// at MPL 1K, with very few phases.
	s := solve(t, "jlex", 4, 1000)
	if s.PercentInPhase() < 90 {
		t.Errorf("jlex coverage = %.1f%%, want very high", s.PercentInPhase())
	}
	if s.NumPhases() > 8 {
		t.Errorf("jlex phases = %d, want a handful", s.NumPhases())
	}
}

func TestPhaseCountsWeaklyDecreaseAcrossMPL(t *testing.T) {
	// The dominant Table 1(b) trend: more MPL, fewer (or equal) phases.
	// Tested across the whole suite at two MPL decades.
	for _, name := range Names() {
		small := solve(t, name, 4, 1000)
		large := solve(t, name, 4, 25000)
		if large.NumPhases() > small.NumPhases() {
			t.Errorf("%s: phases grew with MPL: %d at 1K -> %d at 25K",
				name, small.NumPhases(), large.NumPhases())
		}
	}
}
