// Package synth provides the eight synthetic benchmark programs used to
// evaluate the phase detectors. They stand in for the paper's workloads
// (seven SPECjvm98 benchmarks plus JLex): each program is constructed to
// reproduce the structural signature of its namesake as reported in
// Table 1 of the paper — the relative mix of loop executions, method
// invocations, and recursion roots, and the way phase counts shrink as the
// minimum phase length grows.
//
// All programs are deterministic. Data-dependent control flow is driven by
// a linear congruential generator implemented in bytecode, so the same
// program always produces the same trace.
package synth

import (
	"fmt"
	"sort"

	"opd/internal/trace"
	"opd/internal/vm"
)

// A Benchmark names a synthetic workload and builds its program at a given
// scale. Scale 1 yields a trace of a few tens of thousands of dynamic
// branches (fast enough for unit tests); trace size grows roughly linearly
// with scale. BuildSeeded varies the workload's data-dependent control
// flow (the program structure is unchanged), enabling variance studies
// across inputs; Build uses each benchmark's canonical seed.
type Benchmark struct {
	Name        string
	Description string
	Build       func(scale int) *vm.Program
	BuildSeeded func(scale int, seed int32) *vm.Program
}

// All returns the benchmark suite in the paper's Table 1 order.
func All() []Benchmark {
	return []Benchmark{
		{"compress", "few very long, regular compression/decompression pass loops; no recursion", Compress, CompressSeeded},
		{"jess", "expert-system cycles: rule-matching loops plus recursive goal chains", Jess, JessSeeded},
		{"raytrace", "per-pixel recursive ray descent over object-intersection loops", Raytrace, RaytraceSeeded},
		{"db", "loop-dominated record load, shell-sort, and lookup operations; no recursion", DB, DBSeeded},
		{"javac", "per-unit lex loop, recursive-descent parse, and codegen loop", Javac, JavacSeeded},
		{"mpegaudio", "thousands of short per-frame decode loops inside one long stream loop", Mpegaudio, MpegaudioSeeded},
		{"jack", "many distinct generator passes whose small CRIs resist merging", Jack, JackSeeded},
		{"jlex", "a handful of big regular scanner-generator loops; almost no recursion", JLex, JLexSeeded},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns the benchmark names in suite order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// Run builds the named benchmark at the given scale, executes it, and
// returns its branch and call-loop traces.
func Run(name string, scale int) (trace.Trace, trace.Events, error) {
	b, ok := ByName(name)
	if !ok {
		names := Names()
		sort.Strings(names)
		return nil, nil, fmt.Errorf("synth: unknown benchmark %q (have %v)", name, names)
	}
	if scale < 1 {
		return nil, nil, fmt.Errorf("synth: scale must be >= 1, got %d", scale)
	}
	return vm.Execute(b.Build(scale))
}

// RunSeeded is Run with an explicit workload-data seed. Seed 0 is
// permitted but degenerate (the LCG leaves a zero state fixed only until
// the first increment), so canonical seeds are preferred for headline
// numbers.
func RunSeeded(name string, scale int, seed int32) (trace.Trace, trace.Events, error) {
	b, ok := ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("synth: unknown benchmark %q", name)
	}
	if scale < 1 {
		return nil, nil, fmt.Errorf("synth: scale must be >= 1, got %d", scale)
	}
	return vm.Execute(b.BuildSeeded(scale, seed))
}

// Global memory layout shared by the benchmark programs. Slot 0 holds the
// LCG state; the data region starts at slot dataBase.
const (
	rngSlot  = 0
	dataBase = 8
)

// emitRandNext appends bytecode that advances the LCG in global slot
// rngSlot and leaves the fresh non-negative 31-bit value on the stack.
func emitRandNext(f *vm.FuncBuilder) {
	f.Const(rngSlot).Op(vm.OpGlobalLoad)
	f.Const(1103515245).Op(vm.OpMul)
	f.Const(12345).Op(vm.OpAdd)
	f.Const(0x7FFFFFFF).Op(vm.OpAnd)
	f.Op(vm.OpDup)
	f.Const(rngSlot).Op(vm.OpSwap).Op(vm.OpGlobalStore)
}

// emitRandBelow appends bytecode that leaves a pseudo-random value in
// [0, n) on the stack.
func emitRandBelow(f *vm.FuncBuilder, n int32) {
	emitRandNext(f)
	f.Const(n).Op(vm.OpRem)
}

// emitSeed appends bytecode that stores seed into the LCG state slot.
func emitSeed(f *vm.FuncBuilder, seed int32) {
	f.Const(rngSlot).Const(seed).Op(vm.OpGlobalStore)
}

// emitMix appends a short data-dependent branch cascade over the value in
// local v: it inspects the low bits of v and updates the accumulator local
// acc differently on each path. Each call contributes 2 conditional
// branches whose taken bits depend on the data, giving phases a
// frequency-weighted signature beyond their site set.
func emitMix(f *vm.FuncBuilder, v, acc int) {
	f.IfElse(
		func() { f.Load(v).Const(1).Op(vm.OpAnd) },
		func() { f.Load(acc).Load(v).Op(vm.OpAdd).Store(acc) },
		func() { f.Load(acc).Load(v).Op(vm.OpXor).Store(acc) },
	)
	f.IfElse(
		func() { f.Load(v).Const(2).Op(vm.OpAnd) },
		func() { f.Load(acc).Const(3).Op(vm.OpMul).Const(0x7FFFFFFF).Op(vm.OpAnd).Store(acc) },
		func() { f.Load(acc).Const(1).Op(vm.OpShr).Store(acc) },
	)
}
