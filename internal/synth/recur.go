package synth

import "opd/internal/vm"

// pushCmp appends bytecode that pushes 1 if the comparison `a op b` holds
// and 0 otherwise, where pushArgs pushes a then b. The comparison itself
// is a conditional branch, contributing one profile element.
func pushCmp(f *vm.FuncBuilder, pushArgs func(), op vm.Opcode) {
	yes := f.NewLabel()
	after := f.NewLabel()
	pushArgs()
	f.BranchIf(op, yes)
	f.Const(0).Jump(after)
	f.Bind(yes).Const(1)
	f.Bind(after)
}

// Jess builds the jess analogue: an expert-system loop of
// match-then-fire cycles. Matching is a dense nested loop over rules and
// facts with a helper-method call per test (driving the method-invocation
// count up), and firing walks recursive goal chains, yielding many small
// phases at low MPL and many recursion roots (Table 1: 1.56M invocations,
// 5984 roots).
func Jess(scale int) *vm.Program { return JessSeeded(scale, 4242) }

// JessSeeded is Jess with an explicit PRNG seed, for variance studies
// across workload inputs.
func JessSeeded(scale int, seed int32) *vm.Program {
	const nfacts = 64
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + nfacts)
	main := pb.Function("main", 0, 0)
	testCond := pb.Function("testCondition", 2, 1) // (fact, pattern) -> bool
	evalGoal := pb.Function("evalGoal", 2, 1)      // (goal, depth) -> value

	{
		f := testCond
		v := f.NewLocal()
		f.Load(0).Load(1).Op(vm.OpXor).Store(v)
		f.IfElse(
			func() { f.Load(v).Const(7).Op(vm.OpAnd) },
			func() { f.Const(0).Store(v) },
			func() { f.Const(1).Store(v) },
		)
		f.Load(v).Ret()
	}

	// evalGoal(goal, depth): recursive chain bounded by the goal's value.
	{
		f := evalGoal
		goal, depth := 0, 1
		v := f.NewLocal()
		f.Load(goal).Store(v)
		emitMix(f, goal, v)
		f.IfElse(
			func() {
				pushCmp(f, func() {
					f.Load(depth).Load(goal).Const(5).Op(vm.OpRem)
				}, vm.OpIfLt)
			},
			func() { // recurse
				f.Load(v).Const(3).Op(vm.OpShr).Load(depth).Const(1).Op(vm.OpAdd).Call(evalGoal)
				f.Load(v).Op(vm.OpAdd).Store(v)
			},
			func() {},
		)
		f.Load(v).Ret()
	}

	{
		f := main
		k := f.NewLocal()
		cyc := f.NewLocal()
		rule := f.NewLocal()
		fact := f.NewLocal()
		fired := f.NewLocal()
		r := f.NewLocal()
		tmp := f.NewLocal()
		emitSeed(f, seed)
		f.ForRange(k, 0, nfacts, func() {
			f.Const(dataBase).Load(k).Op(vm.OpAdd)
			emitRandBelow(f, 4096)
			f.Op(vm.OpGlobalStore)
		})
		f.ForRange(cyc, 0, int32(10*scale), func() {
			// match: rules x facts with a call per test
			f.Const(0).Store(fired)
			f.ForRange(rule, 0, 18, func() {
				f.ForRange(fact, 0, nfacts/2, func() {
					f.Const(dataBase).Load(fact).Op(vm.OpAdd).Op(vm.OpGlobalLoad)
					f.Load(rule).Call(testCond)
					f.Load(fired).Op(vm.OpAdd).Store(fired)
				})
			})
			// periodic full conflict-resolution sweep: a much larger loop
			// so mid-MPL phases exist
			f.IfElse(
				func() { f.Load(cyc).Const(9).Op(vm.OpRem) },
				func() {},
				func() {
					f.ForRange(rule, 0, 420, func() {
						f.ForRange(fact, 0, 16, func() {
							emitMix(f, fact, fired)
						})
					})
				},
			)
			// fire: a few recursive goal chains
			f.Load(fired).Const(3).Op(vm.OpRem).Const(1).Op(vm.OpAdd).Store(r)
			f.ForRangeVar(tmp, 0, r, func() {
				emitRandBelow(f, 4096)
				f.Const(0).Call(evalGoal).Op(vm.OpPop)
			})
			// working-memory churn
			f.ForRange(k, 0, 8, func() {
				f.Const(dataBase).Load(k).Op(vm.OpAdd)
				emitRandBelow(f, 4096)
				f.Op(vm.OpGlobalStore)
			})
		})
		f.Ret()
	}
	return pb.MustBuild()
}

// Raytrace builds the raytrace analogue: a row loop over a pixel grid
// where every pixel shoots a recursive ray (intersection scan per level,
// reflection recursion bounded by depth), so recursion roots are plentiful
// (one per reflective pixel) and rows form mid-size phases.
func Raytrace(scale int) *vm.Program { return RaytraceSeeded(scale, 31415) }

// RaytraceSeeded is Raytrace with an explicit PRNG seed, for variance studies
// across workload inputs.
func RaytraceSeeded(scale int, seed int32) *vm.Program {
	const nobj = 16
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + nobj)
	main := pb.Function("main", 0, 0)
	intersect := pb.Function("intersect", 1, 1) // (ray) -> hit value
	traceRay := pb.Function("traceRay", 2, 1)   // (ray, depth) -> colour
	shade := pb.Function("shade", 1, 1)

	{
		f := intersect
		i := f.NewLocal()
		best := f.NewLocal()
		d := f.NewLocal()
		f.Const(0).Store(best)
		f.ForRange(i, 0, nobj, func() {
			f.Const(dataBase).Load(i).Op(vm.OpAdd).Op(vm.OpGlobalLoad)
			f.Load(0).Op(vm.OpXor).Const(1023).Op(vm.OpAnd).Store(d)
			f.IfElse(
				func() { pushCmp(f, func() { f.Load(d).Load(best) }, vm.OpIfGt) },
				func() { f.Load(d).Store(best) },
				func() {},
			)
		})
		f.Load(best).Ret()
	}

	{
		f := shade
		j := f.NewLocal()
		c := f.NewLocal()
		f.Load(0).Store(c)
		f.ForRange(j, 0, 4, func() {
			emitMix(f, j, c)
		})
		f.Load(c).Ret()
	}

	{
		f := traceRay
		ray, depth := 0, 1
		hit := f.NewLocal()
		col := f.NewLocal()
		f.Load(ray).Call(intersect).Store(hit)
		f.Load(hit).Call(shade).Store(col)
		f.IfElse(
			func() {
				// reflective surface and depth < 3?
				refl := f.NewLocal()
				f.Const(0).Store(refl)
				f.IfElse(
					func() { f.Load(hit).Const(3).Op(vm.OpAnd) },
					func() {},
					func() {
						f.IfElse(
							func() { pushCmp(f, func() { f.Load(depth).Const(3) }, vm.OpIfLt) },
							func() { f.Const(1).Store(refl) },
							func() {},
						)
					},
				)
				f.Load(refl)
			},
			func() {
				f.Load(hit).Const(5).Op(vm.OpShr).Load(depth).Const(1).Op(vm.OpAdd).Call(traceRay)
				f.Load(col).Op(vm.OpAdd).Store(col)
			},
			func() {},
		)
		f.Load(col).Ret()
	}

	{
		f := main
		k := f.NewLocal()
		row := f.NewLocal()
		px := f.NewLocal()
		tmp := f.NewLocal()
		emitSeed(f, seed)
		f.ForRange(k, 0, nobj, func() {
			f.Const(dataBase).Load(k).Op(vm.OpAdd)
			emitRandBelow(f, 100000)
			f.Op(vm.OpGlobalStore)
		})
		pixel := func() {
			f.Load(row).Const(64).Op(vm.OpMul).Load(px).Op(vm.OpAdd).Store(tmp)
			emitRandNext(f)
			f.Load(tmp).Op(vm.OpXor)
			f.Const(0).Call(traceRay).Op(vm.OpPop)
		}
		f.ForRange(row, 0, int32(5*scale), func() {
			// every fourth row is a supersampled (much wider) scan, so
			// rows of several sizes show up as phases
			f.IfElse(
				func() { f.Load(row).Const(4).Op(vm.OpRem) },
				func() { f.ForRange(px, 0, 28, pixel) },
				func() { f.ForRange(px, 0, 130, pixel) },
			)
		})
		f.Ret()
	}
	return pb.MustBuild()
}

// Javac builds the javac analogue: per-compilation-unit lexing loop,
// recursive-descent parsing (three mutually recursive nonterminals driving
// both the invocation and recursion-root counts up), and a code-generation
// loop. About half the elements sit in phases, as in Table 1(b).
func Javac(scale int) *vm.Program { return JavacSeeded(scale, 1995) }

// JavacSeeded is Javac with an explicit PRNG seed, for variance studies
// across workload inputs.
func JavacSeeded(scale int, seed int32) *vm.Program {
	const ntok = 256
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + ntok)
	main := pb.Function("main", 0, 0)
	parseExpr := pb.Function("parseExpr", 2, 1) // (pos, depth) -> width
	parseTerm := pb.Function("parseTerm", 2, 1) // mutual with parseExpr
	parseFactor := pb.Function("parseFactor", 2, 1)

	tok := func(f *vm.FuncBuilder, posLocal int) {
		f.Const(dataBase).Load(posLocal).Const(ntok).Op(vm.OpRem).Op(vm.OpAdd).Op(vm.OpGlobalLoad)
	}

	{
		f := parseExpr
		pos, depth := 0, 1
		w := f.NewLocal()
		f.Load(pos).Load(depth).Call(parseTerm).Store(w)
		f.IfElse(
			func() {
				tok(f, pos)
				f.Const(4).Op(vm.OpAnd)
			},
			func() { // binary operator: parse a second term
				f.Load(pos).Load(w).Op(vm.OpAdd).Load(depth).Call(parseTerm)
				f.Load(w).Op(vm.OpAdd).Store(w)
			},
			func() {},
		)
		f.Load(w).Ret()
	}
	{
		f := parseTerm
		pos, depth := 0, 1
		w := f.NewLocal()
		f.Load(pos).Load(depth).Call(parseFactor).Store(w)
		f.IfElse(
			func() {
				tok(f, pos)
				f.Const(8).Op(vm.OpAnd)
			},
			func() {
				f.Load(pos).Load(w).Op(vm.OpAdd).Load(depth).Call(parseFactor)
				f.Load(w).Op(vm.OpAdd).Store(w)
			},
			func() {},
		)
		f.Load(w).Ret()
	}
	{
		f := parseFactor
		pos, depth := 0, 1
		w := f.NewLocal()
		f.Const(1).Store(w)
		f.IfElse(
			func() {
				// parenthesized subexpression if token is even and depth < 3
				sub := f.NewLocal()
				f.Const(0).Store(sub)
				f.IfElse(
					func() {
						tok(f, pos)
						f.Const(1).Op(vm.OpAnd)
					},
					func() {},
					func() {
						f.IfElse(
							func() { pushCmp(f, func() { f.Load(depth).Const(3) }, vm.OpIfLt) },
							func() { f.Const(1).Store(sub) },
							func() {},
						)
					},
				)
				f.Load(sub)
			},
			func() {
				f.Load(pos).Const(1).Op(vm.OpAdd).Load(depth).Const(1).Op(vm.OpAdd).Call(parseExpr)
				f.Const(1).Op(vm.OpAdd).Store(w)
			},
			func() {},
		)
		f.Load(w).Ret()
	}

	{
		f := main
		unit := f.NewLocal()
		i := f.NewLocal()
		stmt := f.NewLocal()
		acc := f.NewLocal()
		emitSeed(f, seed)
		f.ForRange(unit, 0, int32(5*scale), func() {
			// lex: fill the token buffer; every third unit is a big file
			lex := func(extent int32) func() {
				return func() {
					f.ForRange(i, 0, extent, func() {
						f.Const(dataBase).Load(i).Const(ntok).Op(vm.OpRem).Op(vm.OpAdd)
						emitRandBelow(f, 512)
						f.Op(vm.OpGlobalStore)
						emitMix(f, i, acc)
					})
				}
			}
			f.IfElse(
				func() { f.Load(unit).Const(3).Op(vm.OpRem) },
				lex(ntok), lex(3*ntok),
			)
			// parse: one recursion root per statement; big units carry
			// more statements
			f.IfElse(
				func() { f.Load(unit).Const(3).Op(vm.OpRem) },
				func() {
					f.ForRange(stmt, 0, 24, func() {
						f.Load(stmt).Const(9).Op(vm.OpMul).Const(0).Call(parseExpr).Store(acc)
					})
				},
				func() {
					f.ForRange(stmt, 0, 180, func() {
						f.Load(stmt).Const(7).Op(vm.OpMul).Const(0).Call(parseExpr).Store(acc)
					})
				},
			)
			// codegen: straight loop over emitted instructions
			f.ForRange(i, 0, 180, func() {
				emitMix(f, i, acc)
				f.IfElse(
					func() { f.Load(acc).Const(32).Op(vm.OpAnd) },
					func() { f.Load(acc).Const(2).Op(vm.OpShr).Store(acc) },
					func() { f.Load(acc).Const(17).Op(vm.OpAdd).Store(acc) },
				)
			})
		})
		f.Ret()
	}
	return pb.MustBuild()
}

// Jack builds the jack analogue: a parser generator that repeats a round
// of several structurally distinct passes. The passes are mid-sized and
// interleaved, so their CRIs merge poorly and the fraction of elements in
// phase *falls* as MPL grows, as Table 1(b) shows for jack
// (53% at 1K down to 14% at 100K).
func Jack(scale int) *vm.Program { return JackSeeded(scale, 6502) }

// JackSeeded is Jack with an explicit PRNG seed, for variance studies
// across workload inputs.
func JackSeeded(scale int, seed int32) *vm.Program {
	const nsym = 96
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + nsym)
	main := pb.Function("main", 0, 0)
	buildRule := pb.Function("buildRule", 2, 1) // (sym, depth) -> size

	{
		f := buildRule
		sym, depth := 0, 1
		sz := f.NewLocal()
		f.Const(1).Store(sz)
		emitMix(f, sym, sz)
		f.IfElse(
			func() {
				rec := f.NewLocal()
				f.Const(0).Store(rec)
				f.IfElse(
					func() { f.Load(sym).Const(3).Op(vm.OpAnd) },
					func() {},
					func() {
						f.IfElse(
							func() { pushCmp(f, func() { f.Load(depth).Const(4) }, vm.OpIfLt) },
							func() { f.Const(1).Store(rec) },
							func() {},
						)
					},
				)
				f.Load(rec)
			},
			func() {
				f.Load(sym).Const(2).Op(vm.OpShr).Load(depth).Const(1).Op(vm.OpAdd).Call(buildRule)
				f.Load(sz).Op(vm.OpAdd).Store(sz)
			},
			func() {},
		)
		f.Load(sz).Ret()
	}

	{
		f := main
		round := f.NewLocal()
		i := f.NewLocal()
		j := f.NewLocal()
		acc := f.NewLocal()
		emitSeed(f, seed)
		f.ForRange(round, 0, int32(3*scale), func() {
			// pass 1: tokenize
			f.ForRange(i, 0, 220, func() {
				f.Const(dataBase).Load(i).Const(nsym).Op(vm.OpRem).Op(vm.OpAdd)
				emitRandBelow(f, 2048)
				f.Op(vm.OpGlobalStore)
				emitMix(f, i, acc)
			})
			// pass 2: build rules (recursive)
			f.ForRange(i, 0, 40, func() {
				f.Const(dataBase).Load(i).Op(vm.OpAdd).Op(vm.OpGlobalLoad)
				f.Const(0).Call(buildRule).Store(acc)
			})
			// pass 3: FIRST-set fixpoint
			f.ForRange(i, 0, 3, func() {
				f.ForRange(j, 0, nsym, func() {
					emitMix(f, j, acc)
				})
			})
			// pass 4: table construction; every fourth round the grammar
			// is large and the table pass is an order of magnitude bigger
			table := func(extent int32) func() {
				return func() {
					f.ForRange(i, 0, extent, func() {
						f.ForRange(j, 0, 8, func() {
							f.Load(acc).Load(j).Op(vm.OpXor).Store(acc)
							f.IfElse(
								func() { f.Load(acc).Const(2).Op(vm.OpAnd) },
								func() { f.Load(acc).Const(1).Op(vm.OpShr).Store(acc) },
								func() { f.Load(acc).Const(3).Op(vm.OpAdd).Store(acc) },
							)
						})
					})
				}
			}
			f.IfElse(
				func() { f.Load(round).Const(4).Op(vm.OpRem) },
				table(70), table(700),
			)
			// pass 5: emit
			f.ForRange(i, 0, 120, func() {
				emitMix(f, i, acc)
			})
		})
		f.Ret()
	}
	return pb.MustBuild()
}
