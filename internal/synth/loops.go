package synth

import "opd/internal/vm"

// Compress builds the compress analogue: a handful of very long, regular
// compression/decompression pass loops over a shared data buffer, no
// recursion, and a small noisy I/O gap between passes. Both pass
// functions funnel most of their work through one shared helper, so the
// *site set* changes little across pass boundaries while the *frequency
// mix* changes a lot — the property that makes the weighted set model
// shine on compress in the paper (Figure 5).
func Compress(scale int) *vm.Program { return CompressSeeded(scale, 20060325) }

// CompressSeeded is Compress with an explicit PRNG seed, for variance studies
// across workload inputs.
func CompressSeeded(scale int, seed int32) *vm.Program {
	const bufLen = 256
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + bufLen)
	main := pb.Function("main", 0, 0)
	crunch := pb.Function("crunch", 1, 1)
	compressPass := pb.Function("compressPass", 1, 1)
	decompressPass := pb.Function("decompressPass", 1, 1)

	// crunch(v): the shared kernel; 3 data-dependent branches.
	{
		f := crunch
		acc := f.NewLocal()
		f.Load(0).Store(acc)
		emitMix(f, 0, acc)
		f.IfElse(
			func() { f.Load(acc).Const(4).Op(vm.OpAnd) },
			func() { f.Load(acc).Const(5).Op(vm.OpAdd).Store(acc) },
			func() { f.Load(acc).Const(7).Op(vm.OpXor).Store(acc) },
		)
		f.Load(acc).Ret()
	}

	// loadBuf(f, i, dst): dst = globals[dataBase + i%bufLen]
	loadBuf := func(f *vm.FuncBuilder, i, dst int) {
		f.Const(dataBase).Load(i).Const(bufLen).Op(vm.OpRem).Op(vm.OpAdd)
		f.Op(vm.OpGlobalLoad).Store(dst)
	}
	// storeBuf(f, i, src): globals[dataBase + i%bufLen] = src
	storeBuf := func(f *vm.FuncBuilder, i, src int) {
		f.Const(dataBase).Load(i).Const(bufLen).Op(vm.OpRem).Op(vm.OpAdd)
		f.Load(src).Op(vm.OpGlobalStore)
	}

	// compressPass(n): heavy use of crunch (three calls per element) plus
	// a short data-dependent match-window scan.
	{
		f := compressPass
		i := f.NewLocal()
		v := f.NewLocal()
		out := f.NewLocal()
		j := f.NewLocal()
		lim := f.NewLocal()
		f.Const(0).Store(out)
		f.ForRangeVar(i, 0, 0 /* param n is local 0 */, func() {
			loadBuf(f, i, v)
			f.Load(v).Call(crunch).Store(v)
			f.Load(v).Call(crunch).Store(v)
			f.Load(v).Call(crunch).Store(v)
			// window scan: v%6 iterations
			f.Load(v).Const(6).Op(vm.OpRem).Store(lim)
			f.ForRangeVar(j, 0, lim, func() {
				f.Load(out).Load(j).Op(vm.OpXor).Store(out)
			})
			f.Load(out).Load(v).Op(vm.OpAdd).Const(0x7FFFFFFF).Op(vm.OpAnd).Store(out)
			storeBuf(f, i, out)
		})
		f.Load(out).Ret()
	}

	// decompressPass(n): same shared kernel, but only one crunch call per
	// element and a different local mix — same sites, different weights.
	{
		f := decompressPass
		i := f.NewLocal()
		v := f.NewLocal()
		out := f.NewLocal()
		f.Const(0).Store(out)
		f.ForRangeVar(i, 0, 0, func() {
			loadBuf(f, i, v)
			f.Load(v).Call(crunch).Store(v)
			emitMix(f, v, out)
			f.IfElse(
				func() { f.Load(v).Const(8).Op(vm.OpAnd) },
				func() { f.Load(out).Const(1).Op(vm.OpShr).Store(out) },
				func() { f.Load(out).Const(13).Op(vm.OpAdd).Store(out) },
			)
			storeBuf(f, i, out)
		})
		f.Load(out).Ret()
	}

	// main: fill the buffer, then run 4 compress/decompress rounds with a
	// noisy I/O gap between passes.
	{
		f := main
		k := f.NewLocal()
		r := f.NewLocal()
		g := f.NewLocal()
		tmp := f.NewLocal()
		n := f.NewLocal()
		emitSeed(f, seed)
		f.ForRange(k, 0, bufLen, func() {
			f.Const(dataBase).Load(k).Op(vm.OpAdd)
			emitRandBelow(f, 1000000)
			f.Op(vm.OpGlobalStore)
		})
		f.Const(int32(250 * scale)).Store(n)
		ioGap := func() {
			f.ForRange(g, 0, 10, func() {
				emitRandBelow(f, 16)
				f.Store(tmp)
				emitMix(f, tmp, tmp)
			})
		}
		f.ForRange(r, 0, 4, func() {
			f.Load(n).Call(compressPass).Store(tmp)
			ioGap()
			f.Load(n).Call(decompressPass).Store(tmp)
			ioGap()
		})
		f.Ret()
	}
	return pb.MustBuild()
}

// DB builds the db analogue: a record-load loop followed by a long stream
// of database operations — shell sorts over key windows, linear-scan
// lookups, and update sweeps. Loop executions dominate, there is no
// recursion, and nearly all elements sit inside some long-running loop,
// mirroring db's high percent-in-phase at every MPL (Table 1(b)).
func DB(scale int) *vm.Program { return DBSeeded(scale, 998) }

// DBSeeded is DB with an explicit PRNG seed, for variance studies
// across workload inputs.
func DBSeeded(scale int, seed int32) *vm.Program {
	const nrec = 512
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + nrec)
	main := pb.Function("main", 0, 0)
	sortOp := pb.Function("sortWindow", 2, 0) // (base, len)
	lookupOp := pb.Function("lookup", 1, 1)   // (key) -> matches
	updateOp := pb.Function("updateSweep", 1, 0)

	// push globals[dataBase + idxLocal]
	loadRec := func(f *vm.FuncBuilder, idxLocal int) {
		f.Const(dataBase).Load(idxLocal).Op(vm.OpAdd).Op(vm.OpGlobalLoad)
	}
	// globals[dataBase + idxLocal] = valLocal
	storeRec := func(f *vm.FuncBuilder, idxLocal, valLocal int) {
		f.Const(dataBase).Load(idxLocal).Op(vm.OpAdd).Load(valLocal).Op(vm.OpGlobalStore)
	}

	// sortWindow(base, len): shell sort with gaps 7, 3, 1.
	{
		f := sortOp
		base, length := 0, 1
		gap := f.NewLocal()
		i := f.NewLocal()
		j := f.NewLocal()
		jg := f.NewLocal()
		cur := f.NewLocal()
		prev := f.NewLocal()
		limit := f.NewLocal()
		f.Load(base).Load(length).Op(vm.OpAdd).Store(limit)
		f.Const(7).Store(gap)
		f.LoopWhile(
			func() { f.Load(gap) }, vm.OpIfZ, // while gap != 0
			func() {
				f.Load(base).Load(gap).Op(vm.OpAdd).Store(i)
				f.LoopWhile(
					func() { f.Load(i).Load(limit) }, vm.OpIfGe, // while i < limit
					func() {
						f.Load(i).Store(j)
						// insertion: while j >= base+gap && rec[j-gap] > rec[j], swap
						f.LoopWhile(
							func() {
								f.Load(j).Load(base).Load(gap).Op(vm.OpAdd)
							}, vm.OpIfLt,
							func() {
								f.Load(j).Load(gap).Op(vm.OpSub).Store(jg)
								f.Load(jg).Store(prev)
								loadRec(f, prev)
								f.Store(prev) // prev now holds rec[j-gap]
								loadRec(f, j)
								f.Store(cur) // cur holds rec[j]
								// if prev <= cur, ordered: force loop exit by j = base+gap-1... use labeled escape via setting j low
								f.IfElse(
									func() {
										// prev > cur ? 1 : 0 — computed with a branch pair
										done := f.NewLabel()
										after := f.NewLabel()
										f.Load(prev).Load(cur).BranchIf(vm.OpIfGt, done)
										f.Const(0).Jump(after)
										f.Bind(done).Const(1)
										f.Bind(after)
									},
									func() {
										// swap rec[j-gap] and rec[j]
										f.Load(j).Load(gap).Op(vm.OpSub).Store(jg)
										storeRec(f, jg, cur)
										storeRec(f, j, prev)
										f.Load(jg).Store(j)
									},
									func() {
										// in order: stop the insertion walk
										f.Load(base).Store(j)
									},
								)
							},
						)
						f.Load(i).Const(1).Op(vm.OpAdd).Store(i)
					},
				)
				// next gap: 7 -> 3 -> 1 -> 0
				f.IfElse(
					func() { f.Load(gap).Const(7).Op(vm.OpXor) },
					func() {
						f.IfElse(
							func() { f.Load(gap).Const(3).Op(vm.OpXor) },
							func() { f.Const(0).Store(gap) },
							func() { f.Const(1).Store(gap) },
						)
					},
					func() { f.Const(3).Store(gap) },
				)
			},
		)
		f.Ret()
	}

	// lookup(key): linear scan counting records with rec % 64 == key.
	{
		f := lookupOp
		i := f.NewLocal()
		hits := f.NewLocal()
		v := f.NewLocal()
		f.Const(0).Store(hits)
		f.ForRange(i, 0, nrec, func() {
			loadRec(f, i)
			f.Const(64).Op(vm.OpRem).Store(v)
			f.IfElse(
				func() { f.Load(v).Load(0).Op(vm.OpXor) },
				func() {},
				func() { f.Load(hits).Const(1).Op(vm.OpAdd).Store(hits) },
			)
		})
		f.Load(hits).Ret()
	}

	// updateSweep(delta): rewrite every record with a mixed value.
	{
		f := updateOp
		i := f.NewLocal()
		v := f.NewLocal()
		f.ForRange(i, 0, nrec, func() {
			loadRec(f, i)
			f.Load(0).Op(vm.OpAdd).Const(0x7FFFFFFF).Op(vm.OpAnd).Store(v)
			emitMix(f, v, v)
			storeRec(f, i, v)
		})
		f.Ret()
	}

	// main: load records, then a long operation stream.
	{
		f := main
		k := f.NewLocal()
		op := f.NewLocal()
		sel := f.NewLocal()
		tmp := f.NewLocal()
		emitSeed(f, seed)
		f.ForRange(k, 0, nrec, func() {
			f.Const(dataBase).Load(k).Op(vm.OpAdd)
			emitRandBelow(f, 100000)
			f.Op(vm.OpGlobalStore)
		})
		winLen := f.NewLocal()
		winBase := f.NewLocal()
		f.ForRange(op, 0, int32(12*scale), func() {
			f.Load(op).Const(3).Op(vm.OpRem).Store(sel)
			f.IfElse(
				func() { f.Load(sel) }, // sel != 0
				func() {
					f.IfElse(
						func() { f.Load(sel).Const(1).Op(vm.OpXor) }, // sel != 1
						func() { // sel == 2: update
							emitRandBelow(f, 1000)
							f.Call(updateOp)
						},
						func() { // sel == 1: burst of lookups
							f.ForRange(tmp, 0, 6, func() {
								emitRandBelow(f, 64)
								f.Call(lookupOp).Op(vm.OpPop)
							})
						},
					)
				},
				func() { // sel == 0: sort a window whose size cycles, so
					// sort phases appear at several MPL granularities
					f.Load(op).Const(4).Op(vm.OpRem).Const(1).Op(vm.OpAdd).Const(128).Op(vm.OpMul).Store(winLen)
					emitRandNext(f)
					f.Const(nrec).Load(winLen).Op(vm.OpSub).Const(1).Op(vm.OpAdd).Op(vm.OpRem).Store(winBase)
					f.Load(winBase).Load(winLen).Call(sortOp)
				},
			)
		})
		f.Ret()
	}
	return pb.MustBuild()
}

// Mpegaudio builds the mpegaudio analogue: one long stream loop over
// frames, each frame dominated by a filter loop big enough to be a phase
// at small MPL plus several smaller per-frame loops; the stream switches
// decode paths two-thirds of the way through, so at very large MPL only a
// couple of coarse phases remain (Table 1(b): 7594 phases at 1K, 2 at
// 100K).
func Mpegaudio(scale int) *vm.Program { return MpegaudioSeeded(scale, 44100) }

// MpegaudioSeeded is Mpegaudio with an explicit PRNG seed, for variance studies
// across workload inputs.
func MpegaudioSeeded(scale int, seed int32) *vm.Program {
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + 128)
	main := pb.Function("main", 0, 0)
	header := pb.Function("decodeHeader", 0, 1)
	subband := pb.Function("subband", 1, 1)
	synthA := pb.Function("synthFilterA", 1, 1)
	synthB := pb.Function("synthFilterB", 1, 1)

	// decodeHeader: a short fixed loop.
	{
		f := header
		i := f.NewLocal()
		acc := f.NewLocal()
		f.Const(0).Store(acc)
		f.ForRange(i, 0, 16, func() {
			emitRandBelow(f, 256)
			f.Load(acc).Op(vm.OpAdd).Store(acc)
		})
		f.Load(acc).Ret()
	}

	// subband(seed): 32 bands with a data-dependent branch per band.
	{
		f := subband
		i := f.NewLocal()
		acc := f.NewLocal()
		f.Load(0).Store(acc)
		f.ForRange(i, 0, 32, func() {
			emitMix(f, i, acc)
		})
		f.Load(acc).Ret()
	}

	// synthFilterA(seed): the big per-frame loop (~170 iterations × ~7
	// branches ≈ 1.2K elements -> a phase at MPL 1K).
	synthBody := func(f *vm.FuncBuilder, rounds int32) {
		i := f.NewLocal()
		j := f.NewLocal()
		acc := f.NewLocal()
		f.Load(0).Store(acc)
		f.ForRange(i, 0, rounds, func() {
			f.ForRange(j, 0, 4, func() {
				emitMix(f, j, acc)
			})
			f.IfElse(
				func() { f.Load(acc).Const(16).Op(vm.OpAnd) },
				func() { f.Load(acc).Const(1).Op(vm.OpShr).Store(acc) },
				func() { f.Load(acc).Const(11).Op(vm.OpAdd).Store(acc) },
			)
		})
		f.Load(acc).Ret()
	}
	synthBody(synthA, 80)
	synthBody(synthB, 110)
	// Long-block and seek paths: much bigger per-frame loops, so the
	// baseline finds phases at mid MPL values too, not just at 1K.
	synthLong := pb.Function("synthFilterLong", 1, 1)
	synthBody(synthLong, 420)
	seek := pb.Function("seekResync", 1, 1)
	synthBody(seek, 1300)

	// main: F frames; the first 2/3 use filter A, the rest filter B, with
	// periodic long blocks and an occasional stream resync.
	{
		f := main
		frame := f.NewLocal()
		tmp := f.NewLocal()
		frames := int32(18 * scale)
		emitSeed(f, seed)
		f.ForRange(frame, 0, frames, func() {
			f.Call(header).Store(tmp)
			f.Load(tmp).Call(subband).Store(tmp)
			f.IfElse(
				func() { f.Load(frame).Const(13).Op(vm.OpRem) }, // frame % 13 != 0
				func() {
					f.IfElse(
						func() { f.Load(frame).Const(7).Op(vm.OpRem) }, // frame % 7 != 0
						func() {
							f.IfElse(
								func() {
									// frame < 2/3 frames ? 1 : 0
									yes := f.NewLabel()
									after := f.NewLabel()
									f.Load(frame).Const(frames*2/3).BranchIf(vm.OpIfLt, yes)
									f.Const(0).Jump(after)
									f.Bind(yes).Const(1)
									f.Bind(after)
								},
								func() { f.Load(tmp).Call(synthA).Store(tmp) },
								func() { f.Load(tmp).Call(synthB).Store(tmp) },
							)
						},
						func() { f.Load(tmp).Call(synthLong).Store(tmp) },
					)
				},
				func() { f.Load(tmp).Call(seek).Store(tmp) },
			)
		})
		f.Ret()
	}
	return pb.MustBuild()
}

// JLex builds the JLex analogue: a scanner generator that runs a few big,
// regular passes (read spec, subset construction, DFA minimization, table
// emission) with a sprinkle of recursion while parsing regular
// expressions. Nearly the entire run sits inside some large loop
// (Table 1(b): ~97% in phase at MPL 1K), and there are very few recursion
// roots (16 in the paper).
func JLex(scale int) *vm.Program { return JLexSeeded(scale, 7177) }

// JLexSeeded is JLex with an explicit PRNG seed, for variance studies
// across workload inputs.
func JLexSeeded(scale int, seed int32) *vm.Program {
	const tokLen = 192
	pb := vm.NewProgramBuilder().SetGlobalSize(dataBase + tokLen)
	main := pb.Function("main", 0, 0)
	parseRegex := pb.Function("parseRegex", 2, 1) // (pos, depth) -> value

	// parseRegex descends over the token buffer: a small recursive
	// expression parser; depth is bounded so roots stay rare.
	{
		f := parseRegex
		pos, depth := 0, 1
		v := f.NewLocal()
		f.Const(dataBase).Load(pos).Const(tokLen).Op(vm.OpRem).Op(vm.OpAdd).Op(vm.OpGlobalLoad).Store(v)
		f.IfElse(
			func() {
				yes := f.NewLabel()
				after := f.NewLabel()
				f.Load(depth).Const(4).BranchIf(vm.OpIfGe, yes)
				f.Const(0).Jump(after)
				f.Bind(yes).Const(1)
				f.Bind(after)
			},
			func() { // max depth: leaf
				emitMix(f, v, v)
			},
			func() {
				f.IfElse(
					func() { f.Load(v).Const(3).Op(vm.OpAnd) },
					func() { // alternation: two children
						f.Load(pos).Const(1).Op(vm.OpAdd).Load(depth).Const(1).Op(vm.OpAdd).Call(parseRegex)
						f.Load(pos).Const(2).Op(vm.OpAdd).Load(depth).Const(1).Op(vm.OpAdd).Call(parseRegex)
						f.Op(vm.OpAdd).Store(v)
					},
					func() { // literal run
						emitMix(f, v, v)
					},
				)
			},
		)
		f.Load(v).Ret()
	}

	{
		f := main
		i := f.NewLocal()
		j := f.NewLocal()
		acc := f.NewLocal()
		emitSeed(f, seed)
		// pass 1: read spec (fill token buffer)
		f.ForRange(i, 0, tokLen, func() {
			f.Const(dataBase).Load(i).Op(vm.OpAdd)
			emitRandBelow(f, 1024)
			f.Op(vm.OpGlobalStore)
		})
		// pass 2: parse the handful of rules (few recursion roots)
		f.ForRange(i, 0, 16, func() {
			f.Load(i).Const(11).Op(vm.OpMul).Const(0).Call(parseRegex).Store(acc)
		})
		// pass 3: subset construction — one big nested loop
		f.ForRange(i, 0, int32(60*scale), func() {
			f.ForRange(j, 0, 24, func() {
				emitMix(f, j, acc)
			})
		})
		// pass 4: minimization — another big, slightly smaller nest
		f.ForRange(i, 0, int32(40*scale), func() {
			f.ForRange(j, 0, 18, func() {
				f.Load(acc).Load(j).Op(vm.OpXor).Store(acc)
				f.IfElse(
					func() { f.Load(acc).Const(1).Op(vm.OpAnd) },
					func() { f.Load(acc).Const(1).Op(vm.OpShr).Store(acc) },
					func() { f.Load(acc).Const(5).Op(vm.OpAdd).Store(acc) },
				)
			})
		})
		// pass 5: emit tables
		f.ForRange(i, 0, int32(30*scale), func() {
			f.ForRange(j, 0, 12, func() {
				emitMix(f, j, acc)
			})
		})
		f.Ret()
	}
	return pb.MustBuild()
}
