package viz

import (
	"strings"
	"testing"

	"opd/internal/interval"
)

func iv(a, b int64) interval.Interval { return interval.Interval{Start: a, End: b} }

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline(100, 10)
	tl.Add("oracle", []interval.Interval{iv(0, 50)})
	tl.Add("det", []interval.Interval{iv(10, 50), iv(90, 100)})
	out := tl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// oracle: first five buckets full, last five empty.
	if !strings.HasPrefix(lines[0], "oracle #####     ") {
		t.Errorf("oracle row = %q", lines[0])
	}
	// det: bucket 0 empty, 1-4 full, 9 full.
	if !strings.HasPrefix(lines[1], "det     ####    #") {
		t.Errorf("det row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "1 column = 10 elements") {
		t.Errorf("legend = %q", lines[2])
	}
}

func TestTimelinePartialCoverageGlyphs(t *testing.T) {
	tl := NewTimeline(100, 10)
	tl.Add("x", []interval.Interval{iv(0, 5), iv(10, 14), iv(20, 21)})
	line := strings.Split(tl.Render(), "\n")[0]
	// bucket 0: 50% -> '+', bucket 1: 40% -> '+', bucket 2: 10% -> '.'
	cells := strings.TrimPrefix(line, "x ")
	if cells[0] != '+' || cells[1] != '+' || cells[2] != '.' || cells[3] != ' ' {
		t.Errorf("glyphs = %q", cells)
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	if out := NewTimeline(0, 50).Render(); !strings.Contains(out, "empty trace") {
		t.Errorf("empty trace render = %q", out)
	}
	// Tiny column count is clamped; trace shorter than columns still works.
	out := NewTimeline(5, 1).Add("r", []interval.Interval{iv(0, 5)}).Render()
	if !strings.Contains(out, "#") {
		t.Errorf("short trace render = %q", out)
	}
	// Intervals beyond the trace extent must not panic or overflow cells.
	out = NewTimeline(10, 10).Add("r", []interval.Interval{iv(5, 500)}).Render()
	if strings.Count(strings.Split(out, "\n")[0], "#") != 5 {
		t.Errorf("clipped render = %q", out)
	}
}
