// Package viz renders phase interval sets as compact ASCII timelines, so
// an oracle solution and one or more detectors' outputs can be compared
// bucket by bucket at a glance.
package viz

import (
	"fmt"
	"strings"

	"opd/internal/interval"
)

// Timeline accumulates labelled interval rows over a common trace extent.
type Timeline struct {
	traceLen int64
	columns  int
	rows     []row
}

type row struct {
	label  string
	phases []interval.Interval
}

// NewTimeline creates a timeline for a trace of traceLen elements rendered
// across columns character cells (minimum 10).
func NewTimeline(traceLen int64, columns int) *Timeline {
	if columns < 10 {
		columns = 10
	}
	return &Timeline{traceLen: traceLen, columns: columns}
}

// Add appends a labelled row of phase intervals.
func (tl *Timeline) Add(label string, phases []interval.Interval) *Timeline {
	tl.rows = append(tl.rows, row{label, phases})
	return tl
}

// coverage returns the fraction of [lo, hi) covered by the intervals.
func coverage(phases []interval.Interval, lo, hi int64) float64 {
	var covered int64
	for _, p := range phases {
		s, e := p.Start, p.End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			covered += e - s
		}
	}
	return float64(covered) / float64(hi-lo)
}

// cell maps a coverage fraction to its glyph.
func cell(c float64) byte {
	switch {
	case c > 0.75:
		return '#'
	case c > 0.25:
		return '+'
	case c > 0:
		return '.'
	default:
		return ' '
	}
}

// Render draws all rows, aligned, with a legend.
func (tl *Timeline) Render() string {
	if tl.traceLen == 0 {
		return "(empty trace)\n"
	}
	labelWidth := 0
	for _, r := range tl.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	bucket := (tl.traceLen + int64(tl.columns) - 1) / int64(tl.columns)
	var sb strings.Builder
	for _, r := range tl.rows {
		fmt.Fprintf(&sb, "%-*s ", labelWidth, r.label)
		for lo := int64(0); lo < tl.traceLen; lo += bucket {
			hi := lo + bucket
			if hi > tl.traceLen {
				hi = tl.traceLen
			}
			sb.WriteByte(cell(coverage(r.phases, lo, hi)))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-*s (1 column = %d elements; '#' >75%%, '+' >25%%, '.' >0%%, ' ' transition)\n",
		labelWidth, "", bucket)
	return sb.String()
}
