// Package score implements the paper's accuracy scoring metric (§3.2),
// which compares an online phase detector's output against the baseline
// oracle. The metric combines three components:
//
//   - correlation: the fraction of profile elements on whose state
//     (in phase vs in transition) detector and oracle agree;
//   - sensitivity: the fraction of oracle phase boundaries that some
//     detected boundary matches;
//   - false positives: the fraction of detected boundaries that match no
//     oracle boundary.
//
// The combined score is correlation/2 + sensitivity/4 + (1-FP)/4, in
// [0, 1], higher is better.
package score

import (
	"fmt"
	"math"

	"opd/internal/baseline"
)

// Result carries the metric's components for one detector/oracle pair.
type Result struct {
	Correlation    float64
	Sensitivity    float64
	FalsePositives float64
	Score          float64

	MatchedBoundaries  int
	BaselineBoundaries int
	DetectedBoundaries int
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("score=%.4f (corr=%.4f sens=%.4f fp=%.4f, matched %d/%d baseline boundaries, %d detected)",
		r.Score, r.Correlation, r.Sensitivity, r.FalsePositives,
		r.MatchedBoundaries, r.BaselineBoundaries, r.DetectedBoundaries)
}

// Combine computes the weighted score from its components: correlation
// carries half the weight, boundary matching the other half, split evenly
// between sensitivity and false positives.
func Combine(correlation, sensitivity, falsePositives float64) float64 {
	return correlation/2 + sensitivity/4 + (1-falsePositives)/4
}

// Evaluate scores a detector's phase intervals against the oracle
// solution. Detected intervals must be disjoint and sorted by start (the
// natural output of any detector in this repository); Evaluate panics on
// malformed input since that indicates a programming error in the
// detector, not a data condition.
func Evaluate(detected []baseline.Interval, sol *baseline.Solution) Result {
	validateIntervals(detected, sol.TraceLen)

	res := Result{
		BaselineBoundaries: 2 * len(sol.Phases),
		DetectedBoundaries: 2 * len(detected),
	}

	// Correlation. bothInPhase is the total overlap between the two
	// interval sets; bothInTransition follows from inclusion-exclusion.
	total := sol.TraceLen
	var inBase, inDet, bothInPhase int64
	for _, p := range sol.Phases {
		inBase += p.Len()
	}
	for _, d := range detected {
		inDet += d.Len()
	}
	i, j := 0, 0
	for i < len(sol.Phases) && j < len(detected) {
		b, d := sol.Phases[i], detected[j]
		lo := max64(b.Start, d.Start)
		hi := min64(b.End, d.End)
		if hi > lo {
			bothInPhase += hi - lo
		}
		if b.End <= d.End {
			i++
		} else {
			j++
		}
	}
	bothInTransition := total - inBase - inDet + bothInPhase
	if total > 0 {
		res.Correlation = float64(bothInPhase+bothInTransition) / float64(total)
	} else {
		res.Correlation = 1
	}

	// Boundary matching. A detected phase start matches oracle phase i if
	// it falls at/after that phase's start and before its end; a detected
	// phase end matches oracle phase i if it falls at/after that phase's
	// end and before the start of the next oracle phase. The windows for
	// distinct oracle boundaries are disjoint, so "closest wins" reduces
	// to "any detected boundary in the window matches, and each window
	// consumes at most one".
	matched := 0
	di := 0
	for bi, b := range sol.Phases {
		// advance to the first detected phase that could start in b's
		// start window
		for di < len(detected) && detected[di].Start < b.Start {
			di++
		}
		if di < len(detected) && detected[di].Start < b.End {
			matched++ // start boundary matched
		}
		// end window: [b.End, nextStart)
		nextStart := sol.TraceLen + 1
		if bi+1 < len(sol.Phases) {
			nextStart = sol.Phases[bi+1].Start
		}
		if endMatch(detected, b.End, nextStart) {
			matched++
		}
	}
	res.MatchedBoundaries = matched

	switch {
	case res.BaselineBoundaries == 0:
		// Nothing to find: a detector that reports nothing is perfect.
		res.Sensitivity = 1
	default:
		res.Sensitivity = float64(matched) / float64(res.BaselineBoundaries)
	}
	switch {
	case res.DetectedBoundaries == 0:
		res.FalsePositives = 0
	default:
		unmatched := res.DetectedBoundaries - matched
		res.FalsePositives = float64(unmatched) / float64(res.DetectedBoundaries)
	}
	res.Score = Combine(res.Correlation, res.Sensitivity, res.FalsePositives)
	return res
}

// endMatch reports whether some detected phase ends inside [lo, hi).
func endMatch(detected []baseline.Interval, lo, hi int64) bool {
	// binary search over ends (detected is sorted by start and disjoint,
	// so it is also sorted by end)
	left, right := 0, len(detected)
	for left < right {
		mid := (left + right) / 2
		if detected[mid].End < lo {
			left = mid + 1
		} else {
			right = mid
		}
	}
	return left < len(detected) && detected[left].End < hi
}

func validateIntervals(ivs []baseline.Interval, traceLen int64) {
	var prevEnd int64 = math.MinInt64
	for _, iv := range ivs {
		if iv.Start >= iv.End {
			panic(fmt.Sprintf("score: empty or inverted interval %v", iv))
		}
		if iv.Start < prevEnd {
			panic(fmt.Sprintf("score: intervals unsorted or overlapping at %v", iv))
		}
		if iv.Start < 0 || iv.End > traceLen {
			panic(fmt.Sprintf("score: interval %v outside trace of %d elements", iv, traceLen))
		}
		prevEnd = iv.End
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
