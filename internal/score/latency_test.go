package score

import (
	"testing"

	"opd/internal/core"
	"opd/internal/trace"
)

func TestMeasureLatencyExact(t *testing.T) {
	s := sol(1000, p(100, 400), p(600, 900))
	lat := MeasureLatency([]iv{p(150, 450), p(640, 910)}, s)
	if lat.MatchedStarts != 2 || lat.MatchedEnds != 2 {
		t.Fatalf("matched = %d/%d, want 2/2", lat.MatchedStarts, lat.MatchedEnds)
	}
	if lat.MeanStartLag != 45 { // (50+40)/2
		t.Errorf("MeanStartLag = %f, want 45", lat.MeanStartLag)
	}
	if lat.MaxStartLag != 50 {
		t.Errorf("MaxStartLag = %d, want 50", lat.MaxStartLag)
	}
	if lat.MeanEndLag != 30 { // (50+10)/2
		t.Errorf("MeanEndLag = %f, want 30", lat.MeanEndLag)
	}
	if lat.MaxEndLag != 50 {
		t.Errorf("MaxEndLag = %d, want 50", lat.MaxEndLag)
	}
}

func TestMeasureLatencyPerfectDetectionIsZero(t *testing.T) {
	s := sol(1000, p(100, 400))
	lat := MeasureLatency([]iv{p(100, 400)}, s)
	if lat.MeanStartLag != 0 || lat.MeanEndLag != 0 || lat.MaxStartLag != 0 || lat.MaxEndLag != 0 {
		t.Errorf("perfect detection has lag: %+v", lat)
	}
}

func TestMeasureLatencyUnmatched(t *testing.T) {
	s := sol(1000, p(100, 400))
	lat := MeasureLatency(nil, s)
	if lat.MatchedStarts != 0 || lat.MatchedEnds != 0 {
		t.Errorf("empty detection matched something: %+v", lat)
	}
	if lat.MeanStartLag != 0 || lat.MeanEndLag != 0 {
		t.Errorf("lags nonzero with no matches: %+v", lat)
	}
}

// TestLatencyGrowsWithWindowSize pins the paper's observation that the
// detection lag is governed by window size: a detector with a 4x larger
// CW lags at least as much on a clean two-phase stream.
func TestLatencyGrowsWithWindowSize(t *testing.T) {
	mk := func(cw int) []iv {
		var tr trace.Trace
		for i := 0; i < 800; i++ {
			tr = append(tr, trace.MakeBranch(0, 1, true))
		}
		for i := 0; i < 800; i++ {
			tr = append(tr, trace.MakeBranch(0, 2, true))
		}
		d := core.Config{CWSize: cw, TW: core.ConstantTW,
			Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6}.MustNew()
		core.RunTrace(d, tr)
		return d.Phases()
	}
	s := sol(1600, p(0, 800), p(800, 1600))
	small := MeasureLatency(mk(16), s)
	large := MeasureLatency(mk(64), s)
	if small.MatchedStarts == 0 || large.MatchedStarts == 0 {
		t.Fatalf("no matched starts: %+v / %+v", small, large)
	}
	if large.MeanStartLag < small.MeanStartLag {
		t.Errorf("larger windows lag less: %f vs %f", large.MeanStartLag, small.MeanStartLag)
	}
}
