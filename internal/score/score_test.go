package score

import (
	"math"
	"testing"
	"testing/quick"

	"opd/internal/baseline"
)

type iv = baseline.Interval

func p(a, b int64) iv { return iv{Start: a, End: b} }

func sol(traceLen int64, phases ...iv) *baseline.Solution {
	return &baseline.Solution{MPL: 1, TraceLen: traceLen, Phases: phases}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPerfectDetection(t *testing.T) {
	s := sol(1000, p(100, 400), p(600, 900))
	r := Evaluate([]iv{p(100, 400), p(600, 900)}, s)
	if !almost(r.Correlation, 1) || !almost(r.Sensitivity, 1) || !almost(r.FalsePositives, 0) {
		t.Errorf("perfect detection scored %v", r)
	}
	if !almost(r.Score, 1) {
		t.Errorf("Score = %f, want 1", r.Score)
	}
	if r.MatchedBoundaries != 4 {
		t.Errorf("matched = %d, want 4", r.MatchedBoundaries)
	}
}

func TestEmptyDetection(t *testing.T) {
	s := sol(1000, p(100, 400))
	r := Evaluate(nil, s)
	// Correlation: 700 of 1000 elements are in transition for both.
	if !almost(r.Correlation, 0.7) {
		t.Errorf("Correlation = %f, want 0.7", r.Correlation)
	}
	if !almost(r.Sensitivity, 0) {
		t.Errorf("Sensitivity = %f, want 0", r.Sensitivity)
	}
	if !almost(r.FalsePositives, 0) {
		t.Errorf("FalsePositives = %f, want 0 (nothing detected)", r.FalsePositives)
	}
	if !almost(r.Score, 0.7/2+0+0.25) {
		t.Errorf("Score = %f", r.Score)
	}
}

func TestEmptyBaseline(t *testing.T) {
	s := sol(1000)
	r := Evaluate(nil, s)
	if !almost(r.Score, 1) {
		t.Errorf("empty vs empty Score = %f, want 1", r.Score)
	}
	// Detecting phantom phases is punished via correlation and FP.
	r = Evaluate([]iv{p(0, 500)}, s)
	if !almost(r.Correlation, 0.5) {
		t.Errorf("Correlation = %f, want 0.5", r.Correlation)
	}
	if !almost(r.FalsePositives, 1) {
		t.Errorf("FalsePositives = %f, want 1", r.FalsePositives)
	}
	if !almost(r.Sensitivity, 1) {
		t.Errorf("Sensitivity = %f, want 1 (no boundaries to find)", r.Sensitivity)
	}
}

func TestLateDetectionMatchesBoundaries(t *testing.T) {
	// Online detectors find phases late: start inside the oracle phase,
	// end after it but before the next phase. Both boundaries match.
	s := sol(1000, p(100, 400), p(600, 900))
	r := Evaluate([]iv{p(150, 450), p(650, 950)}, s)
	if r.MatchedBoundaries != 4 {
		t.Errorf("matched = %d, want 4", r.MatchedBoundaries)
	}
	if !almost(r.Sensitivity, 1) || !almost(r.FalsePositives, 0) {
		t.Errorf("late detection: %v", r)
	}
	// Correlation is dented by the lateness: 100 late elements out of
	// 1000 disagree (50 at each phase start, 50 past each phase end).
	if !almost(r.Correlation, 0.8) {
		t.Errorf("Correlation = %f, want 0.8", r.Correlation)
	}
}

func TestEarlyStartDoesNotMatch(t *testing.T) {
	// A detected start before the oracle start violates constraint one.
	s := sol(1000, p(100, 400))
	r := Evaluate([]iv{p(50, 400)}, s)
	if r.MatchedBoundaries != 1 { // end matches, start does not
		t.Errorf("matched = %d, want 1", r.MatchedBoundaries)
	}
	if !almost(r.Sensitivity, 0.5) {
		t.Errorf("Sensitivity = %f, want 0.5", r.Sensitivity)
	}
	if !almost(r.FalsePositives, 0.5) {
		t.Errorf("FalsePositives = %f, want 0.5", r.FalsePositives)
	}
}

func TestEndMustPrecedeNextPhase(t *testing.T) {
	// The detected end lands inside the next oracle phase: constraint two
	// fails for phase one's end; but that same boundary is not a start so
	// phase two gains nothing either.
	s := sol(1000, p(100, 400), p(500, 800))
	r := Evaluate([]iv{p(150, 600)}, s)
	// start matches phase 1's start window; end (600) is not in
	// [400, 500), and phase 2's end window is [800, 1001) — no match.
	if r.MatchedBoundaries != 1 {
		t.Errorf("matched = %d, want 1", r.MatchedBoundaries)
	}
}

func TestSpuriousExtraPhases(t *testing.T) {
	s := sol(1000, p(100, 400))
	// One correct phase plus two phantoms in transition regions.
	r := Evaluate([]iv{p(100, 400), p(500, 600), p(700, 800)}, s)
	if r.MatchedBoundaries != 2 {
		t.Errorf("matched = %d, want 2", r.MatchedBoundaries)
	}
	if !almost(r.Sensitivity, 1) {
		t.Errorf("Sensitivity = %f, want 1", r.Sensitivity)
	}
	if !almost(r.FalsePositives, 4.0/6.0) {
		t.Errorf("FalsePositives = %f, want 2/3", r.FalsePositives)
	}
}

func TestOnlyClosestDetectedBoundaryMatches(t *testing.T) {
	// Two detected phases start inside the same oracle phase: only one
	// can match its start.
	s := sol(1000, p(100, 500))
	r := Evaluate([]iv{p(150, 250), p(300, 350)}, s)
	// starts at 150 and 300 both lie in [100,500): one matched.
	// ends at 250 and 350 lie before 500: neither in [500,1001): no match.
	if r.MatchedBoundaries != 1 {
		t.Errorf("matched = %d, want 1", r.MatchedBoundaries)
	}
	if !almost(r.FalsePositives, 0.75) {
		t.Errorf("FalsePositives = %f, want 0.75", r.FalsePositives)
	}
}

func TestCombineWeights(t *testing.T) {
	if !almost(Combine(1, 0, 1), 0.5) {
		t.Error("correlation alone should contribute half")
	}
	if !almost(Combine(0, 1, 0), 0.5) {
		t.Error("perfect matching should contribute half")
	}
	if !almost(Combine(0.8, 0.6, 0.2), 0.8/2+0.6/4+0.8/4) {
		t.Error("Combine mismatch")
	}
}

func TestEvaluatePanicsOnMalformed(t *testing.T) {
	s := sol(100, p(10, 20))
	for name, bad := range map[string][]iv{
		"inverted":    {p(30, 20)},
		"overlapping": {p(10, 50), p(40, 60)},
		"unsorted":    {p(50, 60), p(10, 20)},
		"outside":     {p(90, 150)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s intervals did not panic", name)
				}
			}()
			Evaluate(bad, s)
		}()
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	// Any well-formed detector output yields components in [0,1] and a
	// score in [0,1].
	f := func(seed int64) bool {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng >> 33
			if v < 0 {
				v = -v
			}
			return v % n
		}
		traceLen := int64(1000)
		mk := func() []iv {
			var out []iv
			pos := int64(0)
			for pos < traceLen-2 {
				start := pos + next(50) + 1
				end := start + next(100) + 1
				if end > traceLen {
					break
				}
				out = append(out, iv{Start: start, End: end})
				pos = end
			}
			return out
		}
		s := sol(traceLen, mk()...)
		r := Evaluate(mk(), s)
		inUnit := func(x float64) bool { return x >= 0 && x <= 1 }
		return inUnit(r.Correlation) && inUnit(r.Sensitivity) && inUnit(r.FalsePositives) && inUnit(r.Score)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResultString(t *testing.T) {
	r := Evaluate([]iv{p(100, 400)}, sol(1000, p(100, 400)))
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestZeroLengthTrace(t *testing.T) {
	r := Evaluate(nil, sol(0))
	if !almost(r.Score, 1) {
		t.Errorf("empty trace Score = %f, want 1", r.Score)
	}
}
