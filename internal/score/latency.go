package score

import "opd/internal/baseline"

// Latency summarizes how *late* a detector is: for every matched phase
// boundary (per the rules of Evaluate), the gap in profile elements
// between the oracle boundary and the matching detected boundary. The
// paper notes an online detector is necessarily late — the windows must
// fill before a change is visible — and that the degree of lateness is
// governed by window size; this diagnostic makes the lag measurable
// directly rather than only through its dent in correlation.
type Latency struct {
	// MatchedStarts and MatchedEnds are the boundary counts the lags are
	// averaged over.
	MatchedStarts int
	MatchedEnds   int
	// MeanStartLag and MaxStartLag are over detected-phase starts
	// relative to the oracle starts they match (always >= 0: constraint
	// one forbids early starts).
	MeanStartLag float64
	MaxStartLag  int64
	// MeanEndLag and MaxEndLag are over detected-phase ends relative to
	// the oracle ends they match (>= 0 by constraint two).
	MeanEndLag float64
	MaxEndLag  int64
}

// MeasureLatency computes boundary lag statistics for a detector's phases
// against the oracle, using the same matching windows as Evaluate.
func MeasureLatency(detected []baseline.Interval, sol *baseline.Solution) Latency {
	validateIntervals(detected, sol.TraceLen)
	var lat Latency
	var startSum, endSum int64
	di := 0
	for bi, b := range sol.Phases {
		for di < len(detected) && detected[di].Start < b.Start {
			di++
		}
		if di < len(detected) && detected[di].Start < b.End {
			lag := detected[di].Start - b.Start
			lat.MatchedStarts++
			startSum += lag
			if lag > lat.MaxStartLag {
				lat.MaxStartLag = lag
			}
		}
		nextStart := sol.TraceLen + 1
		if bi+1 < len(sol.Phases) {
			nextStart = sol.Phases[bi+1].Start
		}
		if end, ok := matchedEnd(detected, b.End, nextStart); ok {
			lag := end - b.End
			lat.MatchedEnds++
			endSum += lag
			if lag > lat.MaxEndLag {
				lat.MaxEndLag = lag
			}
		}
	}
	if lat.MatchedStarts > 0 {
		lat.MeanStartLag = float64(startSum) / float64(lat.MatchedStarts)
	}
	if lat.MatchedEnds > 0 {
		lat.MeanEndLag = float64(endSum) / float64(lat.MatchedEnds)
	}
	return lat
}

// matchedEnd returns the first detected end inside [lo, hi).
func matchedEnd(detected []baseline.Interval, lo, hi int64) (int64, bool) {
	left, right := 0, len(detected)
	for left < right {
		mid := (left + right) / 2
		if detected[mid].End < lo {
			left = mid + 1
		} else {
			right = mid
		}
	}
	if left < len(detected) && detected[left].End < hi {
		return detected[left].End, true
	}
	return 0, false
}
