package interval

import (
	"testing"
	"testing/quick"
)

func iv(a, b int64) Interval { return Interval{Start: a, End: b} }

func TestOverlapTotal(t *testing.T) {
	cases := []struct {
		a, b []Interval
		want int64
	}{
		{nil, nil, 0},
		{[]Interval{iv(0, 10)}, nil, 0},
		{[]Interval{iv(0, 10)}, []Interval{iv(5, 15)}, 5},
		{[]Interval{iv(0, 10), iv(20, 30)}, []Interval{iv(5, 25)}, 10},
		{[]Interval{iv(0, 100)}, []Interval{iv(10, 20), iv(30, 40)}, 20},
		{[]Interval{iv(0, 10)}, []Interval{iv(10, 20)}, 0},
		{[]Interval{iv(0, 10)}, []Interval{iv(0, 10)}, 10},
	}
	for _, c := range cases {
		if got := OverlapTotal(c.a, c.b); got != c.want {
			t.Errorf("OverlapTotal(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := OverlapTotal(c.b, c.a); got != c.want {
			t.Errorf("OverlapTotal(%v, %v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestOverlapTotalProperty(t *testing.T) {
	// Against a brute-force per-position count on random disjoint sets.
	mk := func(seed int64) []Interval {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng >> 33
			if v < 0 {
				v = -v
			}
			return v % n
		}
		var out []Interval
		pos := int64(0)
		for pos < 190 {
			s := pos + next(10) + 1
			e := s + next(20) + 1
			if e > 200 {
				break
			}
			out = append(out, iv(s, e))
			pos = e
		}
		return out
	}
	f := func(s1, s2 int64) bool {
		a, b := mk(s1), mk(s2)
		var brute int64
		for pos := int64(0); pos < 200; pos++ {
			inA, inB := false, false
			for _, i := range a {
				if i.Contains(pos) {
					inA = true
				}
			}
			for _, i := range b {
				if i.Contains(pos) {
					inB = true
				}
			}
			if inA && inB {
				brute++
			}
		}
		return OverlapTotal(a, b) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]Interval{iv(0, 5), iv(5, 9)}, 10); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	for name, bad := range map[string][]Interval{
		"empty interval": {iv(3, 3)},
		"inverted":       {iv(5, 2)},
		"overlap":        {iv(0, 5), iv(4, 8)},
		"unsorted":       {iv(5, 8), iv(0, 3)},
		"past end":       {iv(0, 11)},
		"negative":       {iv(-1, 5)},
	} {
		if err := Validate(bad, 10); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTotalLen(t *testing.T) {
	if got := TotalLen([]Interval{iv(0, 5), iv(10, 12)}); got != 7 {
		t.Errorf("TotalLen = %d, want 7", got)
	}
	if TotalLen(nil) != 0 {
		t.Error("TotalLen(nil) != 0")
	}
}
