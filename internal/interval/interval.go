// Package interval provides the half-open index interval shared by the
// oracle (phase ground truth), the online detectors (detected phases), and
// the scoring metric.
package interval

import "fmt"

// An Interval is a half-open range [Start, End) of profile-element
// indices.
type Interval struct {
	Start, End int64
}

// Len returns the number of profile elements the interval spans.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// Contains reports whether position t lies inside the interval.
func (iv Interval) Contains(t int64) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether the two intervals share any position.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// String renders the interval as [start,end).
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Start, iv.End) }

// TotalLen sums the lengths of a set of intervals.
func TotalLen(ivs []Interval) int64 {
	var n int64
	for _, iv := range ivs {
		n += iv.Len()
	}
	return n
}

// OverlapTotal returns the total number of positions covered by both
// interval sets. Both must be sorted by start and internally disjoint.
func OverlapTotal(a, b []Interval) int64 {
	var total int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].End <= b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

// Validate checks that the intervals are non-empty, sorted by start,
// mutually disjoint, and within [0, traceLen].
func Validate(ivs []Interval, traceLen int64) error {
	var prevEnd int64 = -1 << 62
	for _, iv := range ivs {
		if iv.Start >= iv.End {
			return fmt.Errorf("interval: empty or inverted interval %v", iv)
		}
		if iv.Start < prevEnd {
			return fmt.Errorf("interval: unsorted or overlapping at %v", iv)
		}
		if iv.Start < 0 || iv.End > traceLen {
			return fmt.Errorf("interval: %v outside trace of %d elements", iv, traceLen)
		}
		prevEnd = iv.End
	}
	return nil
}
