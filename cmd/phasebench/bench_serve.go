package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"opd/internal/core"
	"opd/internal/serve"
	"opd/internal/telemetry"
	"opd/internal/trace"
)

// serveBenchConfig is the serving benchmark's detector configuration:
// the adaptive default from the paper's recommended region.
var serveBenchConfig = core.Config{CWSize: 500, SkipFactor: 1, TW: core.AdaptiveTW,
	Anchor: core.AnchorRN, Resize: core.ResizeSlide,
	Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6}

// serveStageResult is one pipeline stage's latency distribution over the
// instrumented run: percentiles of opd_serve_stage_latency_ns{stage=...}.
type serveStageResult struct {
	Stage string `json:"stage"`
	telemetry.LatencySummary
}

// serveChunkResult compares HTTP ingest against the direct detector feed
// for one chunk size, and breaks the instrumented serving path down by
// stage.
type serveChunkResult struct {
	ChunkElems        int     `json:"chunk_elems"`
	Chunks            int     `json:"chunks"`
	HTTPWallNS        int64   `json:"http_wall_ns"`
	HTTPElemsPerSec   float64 `json:"http_elements_per_sec"`
	DirectWallNS      int64   `json:"direct_wall_ns"`
	DirectElemsPerSec float64 `json:"direct_elements_per_sec"`
	// Overhead is http wall / direct wall: the full cost of the serving
	// stack (HTTP round trip + wire decode + session locking) per chunk
	// size, as a multiple of the bare detector.
	Overhead float64 `json:"overhead"`
	// TracedWallNS is the same HTTP ingest against a server with a
	// telemetry registry, so every stage timer and histogram is live;
	// TracingOverhead (traced wall / plain wall) is the cost of the
	// observability layer itself.
	TracedWallNS    int64   `json:"traced_wall_ns"`
	TracingOverhead float64 `json:"tracing_overhead"`
	// Chunk is the server-side end-to-end chunk latency distribution
	// (opd_serve_chunk_latency_ns) over the traced run; Stages breaks it
	// down by pipeline stage, in pipeline order.
	Chunk  telemetry.LatencySummary `json:"chunk"`
	Stages []serveStageResult       `json:"stages"`
	// Streaming-path rows: the same workload over one persistent framed
	// connection (POST /v1/sessions/{id}/stream) instead of a request per
	// chunk, in branch frames and — with a client-negotiated symbol table
	// skipping per-element hashing server-side — dense-ID frames.
	// Overheads are again multiples of the bare detector wall.
	StreamWallNS         int64   `json:"stream_wall_ns"`
	StreamElemsPerSec    float64 `json:"stream_elements_per_sec"`
	StreamOverhead       float64 `json:"stream_overhead"`
	StreamIDsWallNS      int64   `json:"stream_ids_wall_ns"`
	StreamIDsElemsPerSec float64 `json:"stream_ids_elements_per_sec"`
	StreamIDsOverhead    float64 `json:"stream_ids_overhead"`
	// StreamChunk/StreamStages are the server-side latency distribution
	// and stage breakdown of an instrumented streaming (branch-frame) run.
	StreamChunk  telemetry.LatencySummary `json:"stream_chunk"`
	StreamStages []serveStageResult       `json:"stream_stages"`
}

// serveBenchRecord is the machine-readable record written by
// -bench-serve-json.
type serveBenchRecord struct {
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	Config    string             `json:"config"`
	Elements  int                `json:"elements"`
	Results   []serveChunkResult `json:"results"`
}

// runBenchServeJSON measures the streaming server's ingest overhead: the
// benchTrace workload is streamed to an in-process phased server over
// real HTTP at several chunk sizes, against the same workload fed
// straight through core.ProcessBatch, and the comparison — including a
// per-stage latency breakdown from an instrumented run — is written as
// JSON to path ("-" for stdout).
func runBenchServeJSON(path string) error {
	const elems = 1 << 19
	tr := benchTrace(elems, 30, 80)

	rec := serveBenchRecord{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Config:    serveBenchConfig.ID(),
		Elements:  len(tr),
	}
	for _, chunk := range []int{1024, 16384, 65536} {
		// Pre-encode the wire chunks so only ingest is measured.
		var payload [][]byte
		var parts []trace.Trace
		for i := 0; i < len(tr); i += chunk {
			end := i + chunk
			if end > len(tr) {
				end = len(tr)
			}
			var buf bytes.Buffer
			if err := trace.WriteBranches(&buf, tr[i:end]); err != nil {
				return err
			}
			payload = append(payload, buf.Bytes())
			parts = append(parts, tr[i:end])
		}

		// Best-of-3 walls: one-shot HTTP wall clocks are noisy enough to
		// swamp the tracing delta this record is meant to expose.
		const rounds = 3

		// Plain runs: no registry, so every probe is nil and tracing is
		// compiled down to a pointer test per call site.
		httpWall := time.Duration(0)
		for i := 0; i < rounds; i++ {
			w, err := streamServeBench(nil, payload)
			if err != nil {
				return err
			}
			if i == 0 || w < httpWall {
				httpWall = w
			}
		}

		// Traced runs: a fresh registry per run, keeping the fastest run's
		// registry so the scraped histograms describe exactly that run.
		var reg *telemetry.Registry
		tracedWall := time.Duration(0)
		for i := 0; i < rounds; i++ {
			r := telemetry.NewRegistry()
			w, err := streamServeBench(r, payload)
			if err != nil {
				return err
			}
			if i == 0 || w < tracedWall {
				tracedWall, reg = w, r
			}
		}

		// Streaming-path runs: one persistent framed connection, branch
		// frames and dense-ID frames, plus one instrumented branch run for
		// the stage breakdown.
		streamWall := time.Duration(0)
		for i := 0; i < rounds; i++ {
			w, err := streamFramedBench(nil, parts, false)
			if err != nil {
				return err
			}
			if i == 0 || w < streamWall {
				streamWall = w
			}
		}
		idsWall := time.Duration(0)
		for i := 0; i < rounds; i++ {
			w, err := streamFramedBench(nil, parts, true)
			if err != nil {
				return err
			}
			if i == 0 || w < idsWall {
				idsWall = w
			}
		}
		var streamReg *telemetry.Registry
		streamTracedWall := time.Duration(0)
		for i := 0; i < rounds; i++ {
			r := telemetry.NewRegistry()
			w, err := streamFramedBench(r, parts, false)
			if err != nil {
				return err
			}
			if i == 0 || w < streamTracedWall {
				streamTracedWall, streamReg = w, r
			}
		}

		directWall, _, _ := measure(func() {
			d := serveBenchConfig.MustNew()
			for i := 0; i < len(tr); i += chunk {
				end := i + chunk
				if end > len(tr) {
					end = len(tr)
				}
				d.ProcessBatch(tr[i:end])
			}
			d.Finish()
		})

		res := serveChunkResult{
			ChunkElems:        chunk,
			Chunks:            len(payload),
			HTTPWallNS:        httpWall.Nanoseconds(),
			HTTPElemsPerSec:   float64(len(tr)) / httpWall.Seconds(),
			DirectWallNS:      directWall.Nanoseconds(),
			DirectElemsPerSec: float64(len(tr)) / directWall.Seconds(),
			Overhead:          httpWall.Seconds() / directWall.Seconds(),
			TracedWallNS:      tracedWall.Nanoseconds(),
			TracingOverhead:   tracedWall.Seconds() / httpWall.Seconds(),
			Chunk:             reg.Latency(telemetry.MetricServeChunkLatency).Summary(),

			StreamWallNS:         streamWall.Nanoseconds(),
			StreamElemsPerSec:    float64(len(tr)) / streamWall.Seconds(),
			StreamOverhead:       streamWall.Seconds() / directWall.Seconds(),
			StreamIDsWallNS:      idsWall.Nanoseconds(),
			StreamIDsElemsPerSec: float64(len(tr)) / idsWall.Seconds(),
			StreamIDsOverhead:    idsWall.Seconds() / directWall.Seconds(),
			StreamChunk:          streamReg.Latency(telemetry.MetricServeChunkLatency).Summary(),
		}
		for _, st := range telemetry.Stages() {
			s := reg.Latency(telemetry.MetricServeStageLatency,
				telemetry.L("stage", st.String())).Summary()
			if s.Count == 0 {
				continue
			}
			res.Stages = append(res.Stages, serveStageResult{Stage: st.String(), LatencySummary: s})
		}
		for _, st := range telemetry.Stages() {
			s := streamReg.Latency(telemetry.MetricServeStageLatency,
				telemetry.L("stage", st.String())).Summary()
			if s.Count == 0 {
				continue
			}
			res.StreamStages = append(res.StreamStages, serveStageResult{Stage: st.String(), LatencySummary: s})
		}
		rec.Results = append(rec.Results, res)
		fmt.Fprintf(os.Stderr,
			"phasebench: serve chunk %5d: http %.3fs, direct %.3fs (%.1fx overhead), stream %.3fs (%.2fx), ids %.3fs (%.2fx), tracing %+.1f%%, chunk p50 %v p99 %v\n",
			chunk, httpWall.Seconds(), directWall.Seconds(), res.Overhead,
			streamWall.Seconds(), res.StreamOverhead,
			idsWall.Seconds(), res.StreamIDsOverhead,
			(res.TracingOverhead-1)*100,
			time.Duration(res.Chunk.P50), time.Duration(res.Chunk.P99))
	}

	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// streamServeBench starts a fresh in-process server (instrumented when
// reg is non-nil), streams the pre-encoded chunks through one session
// over real HTTP, and returns the ingest wall time.
func streamServeBench(reg *telemetry.Registry, payload [][]byte) (time.Duration, error) {
	srv := serve.NewServer(serve.Options{Registry: reg})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 30 * time.Second}

	id, err := openBenchSession(client, base)
	if err != nil {
		return 0, err
	}
	wall, _, _ := measure(func() {
		for _, p := range payload {
			resp, err := client.Post(base+"/v1/sessions/"+id+"/elements",
				"application/octet-stream", bytes.NewReader(p))
			if err != nil {
				panic(err)
			}
			if resp.StatusCode != http.StatusOK {
				panic(fmt.Sprintf("phasebench: serve ingest: status %d", resp.StatusCode))
			}
			resp.Body.Close()
		}
	})
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if resp, err := client.Do(req); err == nil {
		resp.Body.Close()
	}
	return wall, nil
}

// streamFramedBench starts a fresh in-process server (instrumented when
// reg is non-nil), streams the chunks through one session over the
// persistent framed protocol — branch frames, or dense-ID frames with a
// client-side symbol table when ids is set — and returns the ingest wall
// time (all sends plus the drain to the final ack).
func streamFramedBench(reg *telemetry.Registry, parts []trace.Trace, ids bool) (time.Duration, error) {
	srv := serve.NewServer(serve.Options{Registry: reg})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 30 * time.Second}
	id, err := openBenchSession(client, base)
	if err != nil {
		return 0, err
	}
	// NoEvents: this measures pure ingest, and neither the direct feed
	// nor the one-shot HTTP rows pay event delivery without a consumer.
	sc, err := serve.DialStream(srv.Addr(), id, serve.StreamOptions{IDs: ids, NoEvents: true})
	if err != nil {
		return 0, err
	}
	defer sc.Close()
	var serr error
	wall, _, _ := measure(func() {
		for _, p := range parts {
			if serr = sc.Send(p); serr != nil {
				return
			}
		}
		serr = sc.Drain()
	})
	if serr != nil {
		return 0, serr
	}
	if _, err := sc.End(true); err != nil {
		return 0, err
	}
	return wall, nil
}

// openBenchSession opens a phased session for the benchmark config.
func openBenchSession(client *http.Client, base string) (string, error) {
	body, err := json.Marshal(serve.ConfigRequest{CW: serveBenchConfig.CWSize, Policy: "adaptive"})
	if err != nil {
		return "", err
	}
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var opened struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated || opened.ID == "" {
		return "", fmt.Errorf("phasebench: opening serve session: status %d", resp.StatusCode)
	}
	return opened.ID, nil
}
