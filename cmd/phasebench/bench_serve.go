package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"opd/internal/core"
	"opd/internal/serve"
	"opd/internal/trace"
)

// serveBenchConfig is the serving benchmark's detector configuration:
// the adaptive default from the paper's recommended region.
var serveBenchConfig = core.Config{CWSize: 500, SkipFactor: 1, TW: core.AdaptiveTW,
	Anchor: core.AnchorRN, Resize: core.ResizeSlide,
	Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6}

// serveChunkResult compares HTTP ingest against the direct detector feed
// for one chunk size.
type serveChunkResult struct {
	ChunkElems        int     `json:"chunk_elems"`
	Chunks            int     `json:"chunks"`
	HTTPWallNS        int64   `json:"http_wall_ns"`
	HTTPElemsPerSec   float64 `json:"http_elements_per_sec"`
	DirectWallNS      int64   `json:"direct_wall_ns"`
	DirectElemsPerSec float64 `json:"direct_elements_per_sec"`
	// Overhead is http wall / direct wall: the full cost of the serving
	// stack (HTTP round trip + wire decode + session locking) per chunk
	// size, as a multiple of the bare detector.
	Overhead float64 `json:"overhead"`
}

// serveBenchRecord is the machine-readable record written by
// -bench-serve-json.
type serveBenchRecord struct {
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	Config    string             `json:"config"`
	Elements  int                `json:"elements"`
	Results   []serveChunkResult `json:"results"`
}

// runBenchServeJSON measures the streaming server's ingest overhead: the
// benchTrace workload is streamed to an in-process phased server over
// real HTTP at several chunk sizes, against the same workload fed
// straight through core.ProcessBatch, and the comparison is written as
// JSON to path ("-" for stdout).
func runBenchServeJSON(path string) error {
	const elems = 1 << 19
	tr := benchTrace(elems, 30, 80)

	srv := serve.NewServer(serve.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 30 * time.Second}

	rec := serveBenchRecord{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Config:    serveBenchConfig.ID(),
		Elements:  len(tr),
	}
	for _, chunk := range []int{1024, 16384, 65536} {
		// Pre-encode the wire chunks so only ingest is measured.
		var payload [][]byte
		for i := 0; i < len(tr); i += chunk {
			end := i + chunk
			if end > len(tr) {
				end = len(tr)
			}
			var buf bytes.Buffer
			if err := trace.WriteBranches(&buf, tr[i:end]); err != nil {
				return err
			}
			payload = append(payload, buf.Bytes())
		}

		id, err := openBenchSession(client, base)
		if err != nil {
			return err
		}
		httpWall, _, _ := measure(func() {
			for _, p := range payload {
				resp, err := client.Post(base+"/v1/sessions/"+id+"/elements",
					"application/octet-stream", bytes.NewReader(p))
				if err != nil {
					panic(err)
				}
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("phasebench: serve ingest: status %d", resp.StatusCode))
				}
				resp.Body.Close()
			}
		})
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}

		directWall, _, _ := measure(func() {
			d := serveBenchConfig.MustNew()
			for i := 0; i < len(tr); i += chunk {
				end := i + chunk
				if end > len(tr) {
					end = len(tr)
				}
				d.ProcessBatch(tr[i:end])
			}
			d.Finish()
		})

		rec.Results = append(rec.Results, serveChunkResult{
			ChunkElems:        chunk,
			Chunks:            len(payload),
			HTTPWallNS:        httpWall.Nanoseconds(),
			HTTPElemsPerSec:   float64(len(tr)) / httpWall.Seconds(),
			DirectWallNS:      directWall.Nanoseconds(),
			DirectElemsPerSec: float64(len(tr)) / directWall.Seconds(),
			Overhead:          httpWall.Seconds() / directWall.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "phasebench: serve chunk %5d: http %.3fs, direct %.3fs (%.1fx overhead)\n",
			chunk, httpWall.Seconds(), directWall.Seconds(), httpWall.Seconds()/directWall.Seconds())
	}

	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// openBenchSession opens a phased session for the benchmark config.
func openBenchSession(client *http.Client, base string) (string, error) {
	body, err := json.Marshal(serve.ConfigRequest{CW: serveBenchConfig.CWSize, Policy: "adaptive"})
	if err != nil {
		return "", err
	}
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var opened struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated || opened.ID == "" {
		return "", fmt.Errorf("phasebench: opening serve session: status %d", resp.StatusCode)
	}
	return opened.ID, nil
}
