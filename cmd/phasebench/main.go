// Phasebench regenerates the paper's evaluation: every table and figure of
// §4–§5 over the synthetic benchmark suite, plus the repository's two
// extension experiments (the skip-factor overhead sweep and the profile
// source comparison).
//
// Usage:
//
//	phasebench                  # everything, at the default scale
//	phasebench -exp fig4        # one experiment
//	phasebench -json -exp table1b                 # machine-readable output
//	phasebench -scale 2 -benchmarks compress,db   # faster, smaller
//	phasebench -bench-json BENCH_sweep.json       # sweep engine benchmark record
//
// Experiment names: table1a table1b table2a table2b fig4 fig5 fig6 fig7a
// fig7b fig8 skipsweep sources client variance all.
//
// Telemetry: -telemetry-addr serves the live /debug/phasedet surface
// while the experiments run; -telemetry-dump prints the end-of-run
// instrumentation report plus the per-benchmark detector execution
// summary (runs, similarity computations, wall clock).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"opd/internal/experiments"
	"opd/internal/report"
	"opd/internal/telemetry"
)

type job struct {
	name   string
	data   func(ctx *experiments.Context) (any, error)
	render func(any) string
}

func jobs() []job {
	return []job{
		{"table1a",
			func(c *experiments.Context) (any, error) { return c.Table1a() },
			func(v any) string { return report.RenderTable1a(v.([]experiments.BenchStats)) }},
		{"table1b",
			func(c *experiments.Context) (any, error) { return c.Table1b() },
			func(v any) string { return report.RenderTable1b(v.([]experiments.Table1bRow)) }},
		{"table2a",
			func(c *experiments.Context) (any, error) { return c.Table2a() },
			func(v any) string { return report.RenderTable2a(v.([]experiments.Table2aRow)) }},
		{"table2b",
			func(c *experiments.Context) (any, error) { return c.Table2b() },
			func(v any) string { return report.RenderTable2b(v.(*experiments.Table2bResult)) }},
		{"fig4",
			func(c *experiments.Context) (any, error) { return c.Fig4() },
			func(v any) string { return report.RenderFig4(v.([]experiments.Fig4Point)) }},
		{"fig5",
			func(c *experiments.Context) (any, error) { return c.Fig5() },
			func(v any) string { return report.RenderFig5(v.([]experiments.Fig5Point)) }},
		{"fig6",
			func(c *experiments.Context) (any, error) { return c.Fig6() },
			func(v any) string { return report.RenderFig6(v.([]experiments.Fig6Point)) }},
		{"fig7a",
			func(c *experiments.Context) (any, error) { return c.Fig7a() },
			func(v any) string {
				return report.RenderFig7("Figure 7(a): % improvement of Slide over Move resizing (RN anchor)",
					v.([]experiments.Fig7Point))
			}},
		{"fig7b",
			func(c *experiments.Context) (any, error) { return c.Fig7b() },
			func(v any) string {
				return report.RenderFig7("Figure 7(b): % improvement of RN over LNN anchoring (Slide resizing)",
					v.([]experiments.Fig7Point))
			}},
		{"fig8",
			func(c *experiments.Context) (any, error) { return c.Fig8() },
			func(v any) string { return report.RenderFig8(v.([]experiments.Fig8Point)) }},
		{"skipsweep",
			func(c *experiments.Context) (any, error) { return c.SkipSweep(richMPL(c)) },
			nil}, // render bound below, needs the MPL
		{"sources",
			func(c *experiments.Context) (any, error) { return c.ProfileSources(richMPL(c)) },
			nil},
		{"client",
			func(c *experiments.Context) (any, error) {
				mpl := midMPL(c)
				return c.ClientBenefit(mpl, float64(mpl)/5, 0.25)
			},
			func(v any) string { return report.RenderClientBenefit(v.(*experiments.ClientResult)) }},
		{"variance",
			func(c *experiments.Context) (any, error) {
				return c.SeedVariance(richMPL(c), []int32{11, 2026, 777777})
			},
			nil},
	}
}

func midMPL(c *experiments.Context) int64 {
	mpls := c.Options().MPLs
	return mpls[len(mpls)/2]
}

// richMPL picks a low MPL, where the baselines have the most phase
// structure — the regime where overhead/accuracy and profile-source
// comparisons are informative (very large MPLs degenerate to one phase
// per run at this workload scale).
func richMPL(c *experiments.Context) int64 {
	mpls := c.Options().MPLs
	if len(mpls) > 1 {
		return mpls[1]
	}
	return mpls[0]
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (table1a..fig8, skipsweep, sources, or all)")
		scale   = flag.Int("scale", 8, "workload scale; 8 supports the paper's full MPL ladder")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
		workers = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit results as a JSON object keyed by experiment name")
		telAddr = flag.String("telemetry-addr", "", "serve the live "+telemetry.DebugPath+" debug surface on this address (\":0\" picks a port)")
		telDump = flag.Bool("telemetry-dump", false, "print the telemetry report and detector execution summary at end of run")
		benchTo = flag.String("bench-json", "", "benchmark the sweep engines (map vs shared-intern) per config family and write the JSON record to this path (\"-\" = stdout), then exit")
		serveTo = flag.String("bench-serve-json", "", "benchmark streaming-server HTTP ingest against the direct detector feed across chunk sizes and write the JSON record to this path (\"-\" = stdout), then exit")
	)
	flag.Parse()

	if *benchTo != "" {
		if err := runBenchJSON(*benchTo, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "phasebench:", err)
			os.Exit(1)
		}
		return
	}
	if *serveTo != "" {
		if err := runBenchServeJSON(*serveTo); err != nil {
			fmt.Fprintln(os.Stderr, "phasebench:", err)
			os.Exit(1)
		}
		return
	}

	// SIGINT cancels the in-flight sweep; completed experiments are still
	// rendered and the run summary covers everything that finished.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{Scale: *scale, Workers: *workers, Context: sigCtx}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	var reg *telemetry.Registry
	if *telAddr != "" || *telDump {
		reg = telemetry.NewRegistry()
		opts.Telemetry = reg
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phasebench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "phasebench: telemetry at %s\n", srv.URL())
	}
	ctx := experiments.New(opts)

	results := map[string]any{}
	ran := 0
	interrupted := false
	for _, j := range jobs() {
		if *exp != "all" && *exp != j.name {
			continue
		}
		ran++
		start := time.Now()
		data, err := j.data(ctx)
		if errors.Is(err, context.Canceled) {
			// Stop launching experiments; everything already collected
			// below (summary, telemetry, JSON) is still flushed.
			fmt.Fprintf(os.Stderr, "phasebench: interrupted during %s; flushing partial results\n", j.name)
			interrupted = true
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "phasebench: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		if *asJSON {
			results[j.name] = data
			continue
		}
		var out string
		switch {
		case j.render != nil:
			out = j.render(data)
		case j.name == "skipsweep":
			out = report.RenderSkipSweep(richMPL(ctx), data.([]experiments.SkipPoint))
		case j.name == "sources":
			out = report.RenderProfileSources(richMPL(ctx), data.([]experiments.SourcePoint))
		case j.name == "variance":
			out = report.RenderVariance(richMPL(ctx), data.([]experiments.VariancePoint))
		}
		fmt.Printf("==== %s (%.1fs) ====\n\n%s\n", j.name, time.Since(start).Seconds(), out)
	}
	if ran == 0 && !interrupted {
		fmt.Fprintf(os.Stderr, "phasebench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "phasebench:", err)
			os.Exit(1)
		}
	}
	if stats := ctx.RunStats(); !*asJSON && len(stats) > 0 {
		fmt.Printf("==== summary ====\n\n%s\n", report.RenderRunStats(stats))
	}
	if *telDump {
		fmt.Println("==== telemetry ====")
		fmt.Println()
		if err := reg.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "phasebench:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		os.Exit(130)
	}
}
