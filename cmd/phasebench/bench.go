package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"opd/internal/core"
	"opd/internal/sweep"
	"opd/internal/trace"
)

// benchPathResult is one engine's measurement over one config family.
type benchPathResult struct {
	WallNS         int64   `json:"wall_ns"`
	ElementsPerSec float64 `json:"elements_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocBytes     uint64  `json:"alloc_bytes"`
}

// benchFamilyResult compares the legacy map engine and the shared-intern
// engine over one config family of the sweep.
type benchFamilyResult struct {
	Family   string          `json:"family"`
	Configs  int             `json:"configs"`
	Map      benchPathResult `json:"map"`
	Interned benchPathResult `json:"interned"`
	Speedup  float64         `json:"speedup"`
}

// benchTraceResult is the full comparison over one benchmark trace.
type benchTraceResult struct {
	Trace       string              `json:"trace"`
	Elements    int                 `json:"elements"`
	Cardinality int                 `json:"cardinality"`
	Families    []benchFamilyResult `json:"families"`
}

// benchRecord is the top-level machine-readable benchmark record written
// by -bench-json.
type benchRecord struct {
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	Workers   int                `json:"workers"`
	Results   []benchTraceResult `json:"results"`
}

// benchTrace builds a deterministic trace of stable runs: run lengths in
// [1, maxRun] over a pool of `sites` distinct branches. Large pools with
// short runs model whole-program branch profiles — the map-lookup-bound
// regime; small pools with long runs model the synthetic phase suite.
func benchTrace(n, sites, maxRun int) trace.Trace {
	rng := int64(42)
	next := func(m int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int(rng >> 40)
		if v < 0 {
			v = -v
		}
		return v % m
	}
	var tr trace.Trace
	for len(tr) < n {
		site := next(sites)
		run := next(maxRun) + 1
		for i := 0; i < run && len(tr) < n; i++ {
			tr = append(tr, trace.MakeBranch(0, 1+site, true))
		}
	}
	return tr
}

// benchFamilies partitions the enumerated config space into the cost
// regimes the two engines differ on.
func benchFamilies(configs []core.Config) []struct {
	name    string
	configs []core.Config
} {
	pick := func(keep func(core.Config) bool) []core.Config {
		var out []core.Config
		for _, c := range configs {
			if keep(c) {
				out = append(out, c)
			}
		}
		return out
	}
	return []struct {
		name    string
		configs []core.Config
	}{
		{"unweighted-skip1", pick(func(c core.Config) bool {
			return c.Model == core.UnweightedModel && c.SkipFactor == 1
		})},
		{"weighted-skip1", pick(func(c core.Config) bool {
			return c.Model == core.WeightedModel && c.SkipFactor == 1
		})},
		{"skipped", pick(func(c core.Config) bool { return c.SkipFactor > 1 })},
		{"all", configs},
	}
}

// measure runs fn and returns wall clock plus heap allocation deltas.
func measure(fn func()) (time.Duration, uint64, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// runBenchJSON benchmarks the legacy per-config map engine against the
// shared-intern sweep engine per config family and writes the record to
// path ("-" for stdout).
func runBenchJSON(path string, workers int) error {
	space := sweep.PaperSpace([]int{100, 500})
	space.AnchorResize = sweep.AllAnchorResize()
	configs := space.Enumerate()

	traces := []struct {
		name             string
		n, sites, maxRun int
	}{
		// The synthetic suite's regime: few distinct sites, long runs.
		{"lowcard", 400000, 30, 80},
		// Whole-program branch-profile regime: the per-config intern map
		// outgrows the cache; dense counters do not.
		{"hicard", 400000, 100000, 8},
	}

	rec := benchRecord{GoVersion: runtime.Version(), GOARCH: runtime.GOARCH, Workers: workers}
	for _, tc := range traces {
		tr := benchTrace(tc.n, tc.sites, tc.maxRun)
		in := trace.Intern(tr)
		res := benchTraceResult{Trace: tc.name, Elements: in.Len(), Cardinality: in.Cardinality()}
		for _, fam := range benchFamilies(configs) {
			if len(fam.configs) == 0 {
				continue
			}
			elems := float64(in.Len()) * float64(len(fam.configs))
			wallMap, allocsMap, bytesMap := measure(func() {
				sweep.RunConfigsMap(tr, fam.configs, workers)
			})
			wallInt, allocsInt, bytesInt := measure(func() {
				sweep.RunConfigsTelemetry(tr, fam.configs, workers, nil)
			})
			res.Families = append(res.Families, benchFamilyResult{
				Family:  fam.name,
				Configs: len(fam.configs),
				Map: benchPathResult{
					WallNS:         wallMap.Nanoseconds(),
					ElementsPerSec: elems / wallMap.Seconds(),
					Allocs:         allocsMap,
					AllocBytes:     bytesMap,
				},
				Interned: benchPathResult{
					WallNS:         wallInt.Nanoseconds(),
					ElementsPerSec: elems / wallInt.Seconds(),
					Allocs:         allocsInt,
					AllocBytes:     bytesInt,
				},
				Speedup: wallMap.Seconds() / wallInt.Seconds(),
			})
			fmt.Fprintf(os.Stderr, "phasebench: %s/%s: map %.2fs, interned %.2fs (%.2fx, %d configs)\n",
				tc.name, fam.name, wallMap.Seconds(), wallInt.Seconds(),
				wallMap.Seconds()/wallInt.Seconds(), len(fam.configs))
		}
		rec.Results = append(rec.Results, res)
	}

	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
