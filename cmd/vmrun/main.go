// Vmrun assembles a VM program from textual assembly, optionally runs the
// optimizing compiler pass over it, executes it, and — when asked — feeds
// the live branch profile through an online phase detector, printing state
// changes as they happen.
//
// Usage:
//
//	vmrun prog.asm
//	vmrun -optimize -disasm prog.asm
//	vmrun -detect -cw 500 prog.asm
package main

import (
	"flag"
	"fmt"
	"os"

	"opd/internal/core"
	"opd/internal/trace"
	"opd/internal/vm"
)

func main() {
	var (
		optimize = flag.Bool("optimize", false, "run the optimizing compiler pass before execution")
		inline   = flag.Bool("inline", false, "run the inlining pass before optimizing")
		disasm   = flag.Bool("disasm", false, "print the (possibly optimized) program before running")
		cfg      = flag.Bool("cfg", false, "print each function's control-flow graph and natural loops")
		detect   = flag.Bool("detect", false, "run an online phase detector over the live branch profile")
		cw       = flag.Int("cw", 500, "detector current window size (with -detect)")
		param    = flag.Float64("param", 0.6, "detector similarity threshold (with -detect)")
		maxSteps = flag.Int64("maxsteps", 1e9, "instruction budget")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vmrun [flags] prog.asm")
		os.Exit(2)
	}
	src, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
	program, err := vm.Assemble(src)
	src.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
	if *inline {
		program = vm.Inline(program, vm.InlineBudget{})
	}
	if *optimize {
		program = vm.Optimize(program)
	}
	if *disasm {
		fmt.Print(program.Disassemble())
	}
	if *cfg {
		for _, fn := range program.Functions {
			g, err := vm.BuildCFG(fn)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vmrun:", err)
				os.Exit(1)
			}
			fmt.Print(g)
			for _, l := range g.NaturalLoops() {
				fmt.Printf("  loop: header b%d (pc %d), back edge from b%d, body %v\n",
					l.Header, l.HeadPC, l.Back, l.Blocks)
			}
		}
	}

	opts := []vm.Option{vm.WithMaxSteps(*maxSteps)}
	var detector *core.Detector
	if *detect {
		detector = core.Config{
			CWSize:   *cw,
			TW:       core.AdaptiveTW,
			Model:    core.UnweightedModel,
			Analyzer: core.ThresholdAnalyzer,
			Param:    *param,
		}.MustNew()
		last := core.Transition
		opts = append(opts, vm.WithInstrumentation(vm.Instrumentation{
			OnBranch: func(b trace.Branch) {
				if state := detector.Process(b); state != last {
					fmt.Printf("@%-9d %v -> %v\n", detector.Consumed(), last, state)
					last = state
				}
			},
		}))
	}
	interp := vm.NewInterp(program, opts...)
	if err := interp.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
	fmt.Printf("executed: %d dynamic branches\n", interp.BranchCount())
	if g := interp.Globals(); len(g) > 0 {
		fmt.Printf("globals:  %v\n", g)
	}
	if detector != nil {
		detector.Finish()
		fmt.Printf("phases:   %d detected\n", len(detector.Phases()))
		for i, p := range detector.Phases() {
			fmt.Printf("  phase %d: %v\n", i, p)
		}
	}
}
