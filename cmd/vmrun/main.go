// Vmrun assembles a VM program from textual assembly, optionally runs the
// optimizing compiler pass over it, executes it, and — when asked — feeds
// the live branch profile through an online phase detector, printing state
// changes as they happen.
//
// Usage:
//
//	vmrun prog.asm
//	vmrun -optimize -disasm prog.asm
//	vmrun -detect -cw 500 prog.asm
//	vmrun -jit -cw 500 prog.asm                   # adaptive-optimization manager
//	vmrun -jit -telemetry-addr :8080 prog.asm     # live /debug/phasedet surface
//
// Telemetry: -telemetry-addr serves the live /debug/phasedet surface
// while the program runs (VM instruction counters, detector metrics,
// JIT compile/reuse counters, and the phase-event trace);
// -telemetry-dump prints the same registry as a report at exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"opd/internal/core"
	"opd/internal/jit"
	"opd/internal/telemetry"
	"opd/internal/trace"
	"opd/internal/vm"
)

func main() {
	var (
		optimize = flag.Bool("optimize", false, "run the optimizing compiler pass before execution")
		inline   = flag.Bool("inline", false, "run the inlining pass before optimizing")
		disasm   = flag.Bool("disasm", false, "print the (possibly optimized) program before running")
		cfg      = flag.Bool("cfg", false, "print each function's control-flow graph and natural loops")
		detect   = flag.Bool("detect", false, "run an online phase detector over the live branch profile")
		useJIT   = flag.Bool("jit", false, "run the phase-guided adaptive optimization manager over the live branch profile")
		cw       = flag.Int("cw", 500, "detector current window size (with -detect/-jit)")
		param    = flag.Float64("param", 0.6, "detector similarity threshold (with -detect/-jit)")
		maxSteps = flag.Int64("maxsteps", 1e9, "instruction budget")
		telAddr  = flag.String("telemetry-addr", "", "serve the live "+telemetry.DebugPath+" debug surface on this address (\":0\" picks a port)")
		telDump  = flag.Bool("telemetry-dump", false, "print the telemetry report (metrics + phase events) at exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vmrun [flags] prog.asm")
		os.Exit(2)
	}
	src, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
	program, err := vm.Assemble(src)
	src.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
	if *inline {
		program = vm.Inline(program, vm.InlineBudget{})
	}
	if *optimize {
		program = vm.Optimize(program)
	}
	if *disasm {
		fmt.Print(program.Disassemble())
	}
	if *cfg {
		for _, fn := range program.Functions {
			g, err := vm.BuildCFG(fn)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vmrun:", err)
				os.Exit(1)
			}
			fmt.Print(g)
			for _, l := range g.NaturalLoops() {
				fmt.Printf("  loop: header b%d (pc %d), back edge from b%d, body %v\n",
					l.Header, l.HeadPC, l.Back, l.Blocks)
			}
		}
	}

	var reg *telemetry.Registry
	if *telAddr != "" || *telDump {
		reg = telemetry.NewRegistry()
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmrun:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "vmrun: telemetry at %s\n", srv.URL())
	}

	opts := []vm.Option{vm.WithMaxSteps(*maxSteps)}
	if reg != nil {
		opts = append(opts, vm.WithTelemetry(telemetry.NewVMProbe(reg, program.Mode())))
	}
	detCfg := core.Config{
		CWSize:   *cw,
		TW:       core.AdaptiveTW,
		Model:    core.UnweightedModel,
		Analyzer: core.ThresholdAnalyzer,
		Param:    *param,
	}
	var detector *core.Detector
	var manager *jit.System
	switch {
	case *useJIT:
		sys, err := jit.New(jit.Config{
			Detector:       detCfg,
			MatchThreshold: 0.5,
			CompileCost:    float64(*cw),
			Speedup:        0.25,
			Telemetry:      reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmrun:", err)
			os.Exit(1)
		}
		manager = sys
		opts = append(opts, vm.WithInstrumentation(vm.Instrumentation{
			OnBranch: manager.Process,
		}))
	case *detect:
		detector = detCfg.MustNew()
		detector.SetProbe(telemetry.NewDetectorProbe(reg, detCfg.ID()))
		last := core.Transition
		opts = append(opts, vm.WithInstrumentation(vm.Instrumentation{
			OnBranch: func(b trace.Branch) {
				if state := detector.Process(b); state != last {
					fmt.Printf("@%-9d %v -> %v\n", detector.Consumed(), last, state)
					last = state
				}
			},
		}))
	}
	interp := vm.NewInterp(program, opts...)
	if err := interp.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
	fmt.Printf("executed: %d dynamic branches\n", interp.BranchCount())
	if g := interp.Globals(); len(g) > 0 {
		fmt.Printf("globals:  %v\n", g)
	}
	if detector != nil {
		detector.Finish()
		fmt.Printf("phases:   %d detected\n", len(detector.Phases()))
		for i, p := range detector.Phases() {
			fmt.Printf("  phase %d: %v\n", i, p)
		}
	}
	if manager != nil {
		manager.Finish()
		fmt.Printf("jit:      %v\n", manager.Report())
		for i, d := range manager.Decisions() {
			verb := "compiled"
			if d.Reused {
				verb = "reused"
			}
			fmt.Printf("  phase %d: %v behaviour %d (%s)\n", i, d.Phase, d.Behaviour, verb)
		}
	}
	if *telDump {
		fmt.Println()
		if err := reg.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vmrun:", err)
			os.Exit(1)
		}
	}
}
