// Detect runs one online phase detector over a branch trace and prints the
// phases it finds; with an accompanying call-loop trace and an MPL value
// it also scores the detector against the oracle.
//
// Usage:
//
//	detect -trace /tmp/compress -cw 5000 -tw adaptive -model unweighted \
//	       -analyzer threshold -param 0.6 -mpl 10000
//
// The related-work detectors are available through -preset:
//
//	detect -trace /tmp/compress -preset dhodapkar -cw 10000 -mpl 10000
//	detect -trace /tmp/compress -preset lu -cw 4096
//	detect -trace /tmp/compress -preset das -cw 4096 -param 0.8
//
// Telemetry: -telemetry-addr serves the live /debug/phasedet surface
// during the run; -telemetry-dump prints the collected metrics and the
// phase-event trace once the detector finishes.
//
// Robustness: -lenient salvages the valid prefix of a truncated or
// corrupted trace instead of failing, and SIGINT cancels the run cleanly
// — the phases detected so far are printed (marked interrupted, oracle
// scoring skipped) and the process exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"opd/internal/baseline"
	"opd/internal/core"
	"opd/internal/detectors"
	"opd/internal/score"
	"opd/internal/telemetry"
	"opd/internal/trace"
)

func main() {
	var (
		prefix   = flag.String("trace", "", "trace path prefix (expects <prefix>.branches; .events needed for -mpl)")
		cw       = flag.Int("cw", 5000, "current window size (sample window for -preset lu/das)")
		tw       = flag.Int("tw", 0, "trailing window size (0 = same as -cw)")
		skip     = flag.Int("skip", 1, "skip factor: elements consumed per similarity computation")
		policy   = flag.String("policy", "constant", "trailing window policy: constant | adaptive | fixedinterval")
		model    = flag.String("model", "unweighted", "similarity model: unweighted | weighted")
		analyzer = flag.String("analyzer", "threshold", "analyzer: threshold | average")
		param    = flag.Float64("param", 0.6, "analyzer parameter (threshold value or average delta)")
		anchor   = flag.String("anchor", "rn", "adaptive anchor policy: rn | lnn")
		resize   = flag.String("resize", "slide", "adaptive resize policy: slide | move")
		preset   = flag.String("preset", "", "related-work preset: dhodapkar | lu | das | kistler | bbv")
		mpl      = flag.Int64("mpl", 0, "score against the oracle at this MPL (0 = no scoring)")
		show     = flag.Bool("phases", false, "print each detected phase")
		adjusted = flag.Bool("adjusted", false, "use anchor-corrected phase starts for printing and scoring")
		telAddr  = flag.String("telemetry-addr", "", "serve the live "+telemetry.DebugPath+" debug surface on this address (\":0\" picks a port)")
		telDump  = flag.Bool("telemetry-dump", false, "print the telemetry report (metrics + phase events) at end of run")
		lenient  = flag.Bool("lenient", false, "salvage the valid prefix of a truncated/corrupt trace instead of failing")
	)
	flag.Parse()
	if *prefix == "" {
		fmt.Fprintln(os.Stderr, "detect: -trace is required")
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *telAddr != "" || *telDump {
		reg = telemetry.NewRegistry()
	}
	ingest := telemetry.NewIngestProbe(reg)

	branches, err := loadBranches(*prefix+".branches", *lenient, ingest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detect:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "detect: telemetry at %s\n", srv.URL())
	}

	d, desc, err := build(reg, *preset, *cw, *tw, *skip, *policy, *model, *analyzer, *param, *anchor, *resize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(2)
	}
	// One interning pass up front; the detector then consumes dense IDs
	// (models without ID support decode through their SymbolDecoder).
	// SIGINT cancels the run: the detector is finalized where it stopped
	// and the phases found so far are reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	interrupted := false
	if err := core.RunTraceInternedContext(ctx, d, trace.Intern(branches)); err != nil {
		interrupted = true
		d.Finish() // flush the partial group and close any open phase
	}
	phases := d.Phases()
	if *adjusted {
		phases = d.AdjustedPhases()
	}
	fmt.Printf("detector:            %s\n", desc)
	if interrupted {
		fmt.Printf("status:              interrupted (partial results)\n")
	}
	fmt.Printf("elements consumed:   %d\n", d.Consumed())
	fmt.Printf("similarity computes: %d\n", d.SimilarityComputations())
	fmt.Printf("phases detected:     %d\n", len(phases))
	if *show {
		for i, p := range phases {
			fmt.Printf("  phase %3d: %v (len %d)\n", i, p, p.Len())
		}
	}
	if *mpl > 0 && interrupted {
		fmt.Fprintln(os.Stderr, "detect: interrupted; skipping oracle scoring of partial phases")
	}
	if *mpl > 0 && !interrupted {
		events, err := loadEvents(*prefix+".events", *lenient, ingest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detect:", err)
			os.Exit(1)
		}
		sol, err := baseline.Compute(events, int64(len(branches)), *mpl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detect:", err)
			os.Exit(1)
		}
		res := score.Evaluate(phases, sol)
		fmt.Printf("oracle phases:       %d (MPL %d)\n", sol.NumPhases(), *mpl)
		fmt.Println(res)
		lat := score.MeasureLatency(phases, sol)
		fmt.Printf("detection lag:       starts mean %.0f max %d, ends mean %.0f max %d (elements, %d/%d boundaries matched)\n",
			lat.MeanStartLag, lat.MaxStartLag, lat.MeanEndLag, lat.MaxEndLag,
			lat.MatchedStarts+lat.MatchedEnds, res.BaselineBoundaries)
	}
	if *telDump {
		fmt.Println()
		if err := reg.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "detect:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		os.Exit(130)
	}
}

// build assembles the detector; a non-nil registry instruments it.
func build(reg *telemetry.Registry, preset string, cw, tw, skip int, policy, model, analyzer string, param float64, anchor, resize string) (*core.Detector, string, error) {
	fromConfig := func(cfg core.Config) (*core.Detector, string, error) {
		d, err := cfg.New()
		if err == nil {
			d.SetProbe(telemetry.NewDetectorProbe(reg, cfg.ID()))
		}
		return d, cfg.ID(), err
	}
	switch preset {
	case "dhodapkar":
		return fromConfig(detectors.DhodapkarSmith(cw))
	case "lu":
		return detectors.NewLu(cw, 7, 2.0, detectors.WithTelemetry(reg)),
			fmt.Sprintf("lu/window%d/history7/band2.0", cw), nil
	case "das":
		return detectors.NewDas(cw, param, detectors.WithTelemetry(reg)),
			fmt.Sprintf("das/window%d/pearson%g", cw, param), nil
	case "kistler":
		return fromConfig(detectors.KistlerFranz(cw, param))
	case "bbv":
		return detectors.NewBBV(cw, param, detectors.WithTelemetry(reg)),
			fmt.Sprintf("bbv/window%d/thr%g", cw, param), nil
	case "":
		cfg := core.Config{CWSize: cw, TWSize: tw, SkipFactor: skip, Param: param}
		switch policy {
		case "constant":
			cfg.TW = core.ConstantTW
		case "adaptive":
			cfg.TW = core.AdaptiveTW
		case "fixedinterval":
			cfg = core.FixedInterval(cw, cfg.Model, cfg.Analyzer, param)
		default:
			return nil, "", fmt.Errorf("unknown policy %q", policy)
		}
		switch model {
		case "unweighted":
			cfg.Model = core.UnweightedModel
		case "weighted":
			cfg.Model = core.WeightedModel
		default:
			return nil, "", fmt.Errorf("unknown model %q", model)
		}
		switch analyzer {
		case "threshold":
			cfg.Analyzer = core.ThresholdAnalyzer
		case "average":
			cfg.Analyzer = core.AverageAnalyzer
		default:
			return nil, "", fmt.Errorf("unknown analyzer %q", analyzer)
		}
		switch anchor {
		case "rn":
			cfg.Anchor = core.AnchorRN
		case "lnn":
			cfg.Anchor = core.AnchorLNN
		default:
			return nil, "", fmt.Errorf("unknown anchor %q", anchor)
		}
		switch resize {
		case "slide":
			cfg.Resize = core.ResizeSlide
		case "move":
			cfg.Resize = core.ResizeMove
		default:
			return nil, "", fmt.Errorf("unknown resize %q", resize)
		}
		return fromConfig(cfg)
	default:
		return nil, "", fmt.Errorf("unknown preset %q", preset)
	}
}

func loadBranches(path string, lenient bool, probe *telemetry.IngestProbe) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		probe.Read(true)
		return nil, err
	}
	defer f.Close()
	if !lenient {
		tr, err := trace.ReadBranches(f)
		probe.Read(err != nil)
		return tr, err
	}
	tr, err := trace.ReadBranchesLenient(f)
	if err != nil {
		if len(tr) == 0 {
			probe.Read(true)
			return nil, err
		}
		probe.Read(false)
		probe.Salvaged(int64(len(tr)))
		fmt.Fprintf(os.Stderr, "detect: %s: damaged stream, salvaged %d elements (%v)\n", path, len(tr), err)
		return tr, nil
	}
	probe.Read(false)
	return tr, nil
}

func loadEvents(path string, lenient bool, probe *telemetry.IngestProbe) (trace.Events, error) {
	f, err := os.Open(path)
	if err != nil {
		probe.Read(true)
		return nil, err
	}
	defer f.Close()
	if !lenient {
		es, err := trace.ReadEvents(f)
		probe.Read(err != nil)
		return es, err
	}
	es, err := trace.ReadEventsLenient(f)
	if err != nil {
		if len(es) == 0 {
			probe.Read(true)
			return nil, err
		}
		probe.Read(false)
		probe.Salvaged(int64(len(es)))
		fmt.Fprintf(os.Stderr, "detect: %s: damaged stream, salvaged %d events (%v)\n", path, len(es), err)
		return es, nil
	}
	probe.Read(false)
	return es, nil
}
