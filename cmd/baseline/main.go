// Baseline runs the offline oracle over a call-loop trace and prints the
// phases it identifies at one or more MPL values.
//
// Usage:
//
//	baseline -trace /tmp/compress -mpl 1000,10000 [-phases] [-cris]
//
// reads /tmp/compress.branches and /tmp/compress.events as written by
// tracegen.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"opd/internal/baseline"
	"opd/internal/trace"
)

func main() {
	var (
		prefix  = flag.String("trace", "", "trace path prefix (expects <prefix>.branches and <prefix>.events)")
		mpllist = flag.String("mpl", "1000,5000,10000,25000,50000,100000", "comma-separated MPL values")
		phases  = flag.Bool("phases", false, "print each phase interval")
		cris    = flag.Bool("cris", false, "print the raw complete repetitive instances")
		hier    = flag.Bool("hierarchy", false, "print the phase hierarchy (repetition containment forest)")
	)
	flag.Parse()
	if *prefix == "" {
		fmt.Fprintln(os.Stderr, "baseline: -trace is required")
		os.Exit(2)
	}
	branches, events, err := load(*prefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		os.Exit(1)
	}
	if *cris {
		list, err := baseline.ExtractCRIs(events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "baseline:", err)
			os.Exit(1)
		}
		for _, c := range list {
			fmt.Printf("%-9s id=%-6d %v len=%d count=%d\n", c.Kind, c.ID, c.Interval, c.Len(), c.Count)
		}
	}
	if *hier {
		roots, err := baseline.Hierarchy(events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "baseline:", err)
			os.Exit(1)
		}
		fmt.Print(baseline.FormatHierarchy(roots))
	}
	fmt.Printf("%-8s  %8s  %10s\n", "MPL", "# phases", "% in phase")
	for _, field := range strings.Split(*mpllist, ",") {
		mpl, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline: bad MPL %q: %v\n", field, err)
			os.Exit(2)
		}
		sol, err := baseline.Compute(events, int64(len(branches)), mpl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8d  %8d  %9.2f%%\n", mpl, sol.NumPhases(), sol.PercentInPhase())
		if *phases {
			for i, p := range sol.Phases {
				fmt.Printf("  phase %3d: %v (len %d)\n", i, p, p.Len())
			}
		}
	}
}

func load(prefix string) (trace.Trace, trace.Events, error) {
	bf, err := os.Open(prefix + ".branches")
	if err != nil {
		return nil, nil, err
	}
	defer bf.Close()
	branches, err := trace.ReadBranches(bf)
	if err != nil {
		return nil, nil, err
	}
	ef, err := os.Open(prefix + ".events")
	if err != nil {
		return nil, nil, err
	}
	defer ef.Close()
	events, err := trace.ReadEvents(ef)
	if err != nil {
		return nil, nil, err
	}
	return branches, events, nil
}
