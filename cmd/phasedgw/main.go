// Phasedgw is the phased cluster gateway: the fleet's single
// client-facing endpoint. It consistent-hashes session IDs over a fixed
// set of phased nodes, proxies every wire path — one-shot ingest,
// polling, SSE, and the framed stream upgrade (spliced byte-for-byte) —
// health-probes the fleet, and live-migrates sessions off draining or
// failed nodes.
//
// Usage:
//
//	phasedgw -addr :8090 -nodes 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//
// Clients speak the ordinary phased API to the gateway; session IDs are
// minted by the gateway so placement is decided before any node is
// contacted. Draining a node for maintenance:
//
//	curl -s -X POST 'localhost:8090/admin/drain?node=127.0.0.1:8081'
//
// Every session homed on the node is exported (snapshot + WAL tail) and
// adopted by a ring successor with bit-identical state; clients ride
// through on the reliability layer's resume machinery with at most a
// reconnect. A node that dies without draining is detected by the
// health prober (consecutive /readyz failures or data-plane errors);
// its sessions are re-homed lazily as their clients reconnect, whose
// deterministic replay rebuilds the lost state exactly.
//
// Telemetry: /metrics serves opd_gateway_* (routing, node health,
// migrations) in Prometheus text form; /healthz and /readyz report
// liveness and whether any node is routable.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opd/internal/cluster"
	"opd/internal/telemetry"
)

// newLogger builds the process logger from the -log-level / -log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	hopts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, hopts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want \"text\" or \"json\")", format)
}

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address (\":0\" picks a free port)")
		nodes         = flag.String("nodes", "", "comma-separated phased node addresses (host:port each); required")
		maxSess       = flag.Int("max-sessions", 4096, "cluster-global session cap; opens beyond it are shed with 429 (negative disables)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "node health probe cadence")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe/request failures before a node is marked down")
		idle          = flag.Duration("idle-timeout", 10*time.Minute, "drop routing entries idle this long (negative disables)")
		grace         = flag.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight requests")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug logs every request)")
		logFormat     = flag.String("log-format", "text", "log output format: \"text\" (key=value) or \"json\"")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phasedgw:", err)
		os.Exit(2)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "phasedgw: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	nodeList := strings.Split(*nodes, ",")
	out := nodeList[:0]
	for _, n := range nodeList {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	nodeList = out
	if len(nodeList) == 0 {
		fail("-nodes is required (comma-separated host:port list)")
	}
	if *probeInterval <= 0 {
		fail("-probe-interval must be positive (got %v)", *probeInterval)
	}
	if *failThreshold <= 0 {
		fail("-fail-threshold must be positive (got %d)", *failThreshold)
	}
	if *grace <= 0 {
		fail("-shutdown-grace must be positive (got %v)", *grace)
	}

	reg := telemetry.NewRegistry()
	gw, err := cluster.New(cluster.Options{
		Nodes:         nodeList,
		MaxSessions:   *maxSess,
		ProbeInterval: *probeInterval,
		FailThreshold: *failThreshold,
		IdleTimeout:   *idle,
		Registry:      reg,
		Logger:        logger,
	})
	if err != nil {
		fail("%v", err)
	}
	if err := gw.Start(*addr); err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("listening",
		"addr", gw.Addr(),
		"nodes", strings.Join(nodeList, ","),
		"metrics_url", fmt.Sprintf("http://%s/metrics", gw.Addr()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately

	logger.Info("shutting down", "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := gw.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
