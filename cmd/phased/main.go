// Phased is the multi-tenant streaming phase-detection server: a
// long-running HTTP service where each client session owns a live online
// phase detector (a configurable window/model/analyzer triple), fed
// incrementally with binary trace chunks, with phase-change events
// delivered by polling or as a live SSE stream.
//
// Usage:
//
//	phased -addr :8080
//	phased -addr :8080 -data-dir /var/lib/phased -fsync always
//
// Open a session, stream elements, watch events:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"cw":500,"policy":"adaptive"}'
//	curl -s --data-binary @chunk.branches localhost:8080/v1/sessions/<id>/elements
//	curl -N localhost:8080/v1/sessions/<id>/events?stream=1
//	curl -s -X DELETE localhost:8080/v1/sessions/<id>
//
// Limits: -max-sessions live sessions (429 beyond), -max-window profile
// elements of window memory per session (413 beyond), -max-chunk bytes
// per ingest request (413 beyond). Idle sessions are evicted after
// -idle-timeout (their open phases flushed); -max-age is a hard TTL.
//
// Durability: with -data-dir set, every acknowledged chunk is written to
// a per-session WAL before it reaches the detector, the full session
// state is checkpointed every -snapshot-every chunks, and on boot the
// server replays the directory back into live sessions before admitting
// traffic — /readyz answers 503 while replay runs, then 200. -fsync
// picks the WAL durability/latency trade-off: "always" (fsync every
// chunk), "never" (leave it to the OS), or a duration like "100ms"
// (periodic). Without -data-dir the server is purely in-memory.
//
// Overload resilience: -mem-budget caps the serving layer's accounted
// memory — past 80% new sessions are shed with 429 + Retry-After and the
// janitor pressure-evicts idle sessions; past the budget ingest chunks
// are shed with a retryable error. -heartbeat bounds framed-stream read
// silence (ping after one interval, disconnect after two);
// -stream-write-timeout and -sse-write-timeout bound writes to slow
// consumers (dropped subscribers resume via Last-Event-ID);
// -watchdog-deadline condemns a session whose detector holds its mutex
// too long, dumping its flight recorder first. -durability picks the
// WAL-failure policy: "strict" fails chunks closed with 503, "degraded"
// trips a per-session circuit breaker after -wal-failure-limit
// consecutive failures and continues detection ephemerally (the session
// reports degraded:true) until the disk heals and clears the
// -min-disk-free watermark. Every shed, drop, trip, and resume is an
// opd_resilience_* metric.
//
// Telemetry is always on: /metrics (Prometheus) and /debug/phasedet
// (Prometheus/JSON + the phase-event ring) are mounted on the same mux,
// together with /debug/pprof and per-session flight recorders at
// /v1/sessions/{id}/flight. Logs are structured (log/slog, key=value or
// JSON via -log-format) with session and request IDs; -log-level debug
// adds a line per HTTP request.
//
// SIGTERM/SIGINT shut down gracefully: new sessions are refused and
// in-flight requests drain within -shutdown-grace. Without -data-dir
// every live session is finished — buffered partial groups applied and
// open phases flushed. With -data-dir sessions are instead persisted
// as-is and resume after the next boot's replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opd/internal/durable"
	"opd/internal/serve"
	"opd/internal/telemetry"
)

// newLogger builds the process logger from the -log-level / -log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	hopts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, hopts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want \"text\" or \"json\")", format)
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		maxSess    = flag.Int("max-sessions", 1024, "maximum live sessions; opens beyond this are rejected with 429")
		maxWindow  = flag.Int("max-window", 1<<20, "maximum window memory per session in profile elements (CW+TW); larger configs are rejected with 413")
		maxChunk   = flag.Int64("max-chunk", 8<<20, "maximum ingest request body in bytes; larger chunks are rejected with 413")
		idle       = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions idle this long, flushing their open phases (negative disables)")
		maxAge     = flag.Duration("max-age", 0, "hard session TTL regardless of activity (0 disables)")
		sweepEvery = flag.Duration("sweep-interval", 15*time.Second, "eviction janitor period")
		maxEvents  = flag.Int("max-events", 65536, "phase events retained per session for polling")
		grace      = flag.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight requests")
		dataDir    = flag.String("data-dir", "", "persist sessions here (WAL + snapshots) and recover them on boot; empty runs in-memory")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: \"always\", \"never\", or an interval like \"100ms\"")
		snapEvery  = flag.Int("snapshot-every", 64, "checkpoint full session state every this many chunks")
		flightLen  = flag.Int("flight-chunks", 64, "chunk traces retained per session in the flight recorder")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug logs every request)")
		logFormat  = flag.String("log-format", "text", "log output format: \"text\" (key=value) or \"json\"")

		memBudget    = flag.Int64("mem-budget", 512<<20, "accounted-memory budget in bytes: session opens shed past 80%, ingest chunks shed past 100% (negative disables shedding)")
		durability   = flag.String("durability", "strict", "WAL-failure policy with -data-dir: \"strict\" (fail chunks closed) or \"degraded\" (trip a breaker, continue ephemerally)")
		walFailLimit = flag.Int("wal-failure-limit", 3, "consecutive WAL failures before the degraded policy's breaker trips")
		minDiskFree  = flag.Int64("min-disk-free", 128<<20, "disk-free bytes required before durability resumes after a degraded spell (negative disables the check)")
		heartbeat    = flag.Duration("heartbeat", 30*time.Second, "framed-stream heartbeat interval: ping after one silent interval, disconnect after two (negative disables)")
		streamWrite  = flag.Duration("stream-write-timeout", 15*time.Second, "per-write deadline on framed stream connections; slower peers are disconnected and resume via their cursor (negative disables)")
		sseWrite     = flag.Duration("sse-write-timeout", 15*time.Second, "per-write deadline on SSE subscribers; slower consumers are dropped and resume via Last-Event-ID (negative disables)")
		watchdog     = flag.Duration("watchdog-deadline", time.Minute, "condemn a session whose detector holds its mutex this long, dumping its flight recorder (negative disables)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phased:", err)
		os.Exit(2)
	}

	// Fail fast on nonsense configuration: a typo'd cap or deadline must
	// be a clear exit-2 at boot, not a server that silently sheds
	// everything (or never sheds anything).
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "phased: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"-max-sessions", int64(*maxSess)},
		{"-max-window", int64(*maxWindow)},
		{"-max-chunk", *maxChunk},
		{"-max-events", int64(*maxEvents)},
		{"-snapshot-every", int64(*snapEvery)},
		{"-flight-chunks", int64(*flightLen)},
		{"-wal-failure-limit", int64(*walFailLimit)},
	} {
		if c.v < 0 {
			fail("%s must not be negative (got %d)", c.name, c.v)
		}
	}
	// Zero is ambiguous for a deadline — "no deadline" is spelled with a
	// negative value — so reject it rather than guess.
	for _, c := range []struct {
		name string
		v    time.Duration
	}{
		{"-heartbeat", *heartbeat},
		{"-stream-write-timeout", *streamWrite},
		{"-sse-write-timeout", *sseWrite},
		{"-watchdog-deadline", *watchdog},
		{"-shutdown-grace", *grace},
	} {
		if c.v == 0 {
			fail("%s must be positive, or negative to disable (got 0)", c.name)
		}
	}
	if *memBudget == 0 {
		fail("-mem-budget must be positive, or negative to disable shedding (got 0)")
	}
	durPolicy, err := serve.ParseDurabilityPolicy(*durability)
	if err != nil {
		fail("%v", err)
	}
	if *dataDir == "" && *durability != "strict" {
		fail("-durability=%s requires -data-dir (nothing to degrade without a WAL)", *durability)
	}

	reg := telemetry.NewRegistry()
	opts := serve.Options{
		MaxSessions:        *maxSess,
		MaxWindowElems:     *maxWindow,
		MaxChunkBytes:      *maxChunk,
		IdleTimeout:        *idle,
		MaxAge:             *maxAge,
		SweepInterval:      *sweepEvery,
		MaxEventsRetained:  *maxEvents,
		Registry:           reg,
		SnapshotEvery:      *snapEvery,
		FlightChunks:       *flightLen,
		Logger:             logger,
		MemBudgetBytes:     *memBudget,
		Durability:         durPolicy,
		WALFailureLimit:    *walFailLimit,
		MinDiskFreeBytes:   *minDiskFree,
		HeartbeatInterval:  *heartbeat,
		StreamWriteTimeout: *streamWrite,
		SSEWriteTimeout:    *sseWrite,
		WatchdogDeadline:   *watchdog,
	}
	if *dataDir != "" {
		policy, interval, err := durable.ParseSyncPolicy(*fsync)
		if err != nil {
			fail("%v", err)
		}
		store, err := durable.Open(durable.Options{
			Dir:          *dataDir,
			Policy:       policy,
			SyncInterval: interval,
			Registry:     reg,
		})
		if err != nil {
			logger.Error("opening data dir", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		opts.Store = store
		// A full disk is a guaranteed degraded spell (or a crash loop
		// under strict): surface it at boot, not at the first chunk.
		if *minDiskFree > 0 {
			if free, err := durable.DiskFree(*dataDir); err == nil && free < uint64(*minDiskFree) {
				logger.Warn("data dir below disk-free watermark at boot",
					"dir", *dataDir, "free_bytes", free, "min_free_bytes", *minDiskFree,
					"durability", *durability)
			}
		}
	}
	srv := serve.NewServer(opts)
	if err := srv.Start(*addr); err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("listening",
		"addr", srv.Addr(),
		"debug_url", fmt.Sprintf("http://%s%s", srv.Addr(), telemetry.DebugPath),
		"metrics_url", fmt.Sprintf("http://%s/metrics", srv.Addr()))

	// Boot replay: the listener is up (liveness probes pass, the API
	// 503s) while the data dir replays; /readyz flips to 200 after.
	if *dataDir != "" {
		logger.Info("recovering sessions", "data_dir", *dataDir, "fsync", *fsync)
	}
	t0 := time.Now()
	recovered, dropped, err := srv.Recover()
	if err != nil {
		logger.Error("recovery failed", "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("ready",
			"recovered", recovered, "dropped", dropped, "dur", time.Since(t0))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately

	mode := "flushing open sessions"
	if *dataDir != "" {
		mode = "persisting open sessions"
	}
	logger.Info("shutting down", "mode", mode, "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
