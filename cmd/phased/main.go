// Phased is the multi-tenant streaming phase-detection server: a
// long-running HTTP service where each client session owns a live online
// phase detector (a configurable window/model/analyzer triple), fed
// incrementally with binary trace chunks, with phase-change events
// delivered by polling or as a live SSE stream.
//
// Usage:
//
//	phased -addr :8080
//	phased -addr :8080 -data-dir /var/lib/phased -fsync always
//
// Open a session, stream elements, watch events:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"cw":500,"policy":"adaptive"}'
//	curl -s --data-binary @chunk.branches localhost:8080/v1/sessions/<id>/elements
//	curl -N localhost:8080/v1/sessions/<id>/events?stream=1
//	curl -s -X DELETE localhost:8080/v1/sessions/<id>
//
// Limits: -max-sessions live sessions (429 beyond), -max-window profile
// elements of window memory per session (413 beyond), -max-chunk bytes
// per ingest request (413 beyond). Idle sessions are evicted after
// -idle-timeout (their open phases flushed); -max-age is a hard TTL.
//
// Durability: with -data-dir set, every acknowledged chunk is written to
// a per-session WAL before it reaches the detector, the full session
// state is checkpointed every -snapshot-every chunks, and on boot the
// server replays the directory back into live sessions before admitting
// traffic — /readyz answers 503 while replay runs, then 200. -fsync
// picks the WAL durability/latency trade-off: "always" (fsync every
// chunk), "never" (leave it to the OS), or a duration like "100ms"
// (periodic). Without -data-dir the server is purely in-memory.
//
// Telemetry is always on: /metrics (Prometheus) and /debug/phasedet
// (Prometheus/JSON + the phase-event ring) are mounted on the same mux,
// together with /debug/pprof and per-session flight recorders at
// /v1/sessions/{id}/flight. Logs are structured (log/slog, key=value or
// JSON via -log-format) with session and request IDs; -log-level debug
// adds a line per HTTP request.
//
// SIGTERM/SIGINT shut down gracefully: new sessions are refused and
// in-flight requests drain within -shutdown-grace. Without -data-dir
// every live session is finished — buffered partial groups applied and
// open phases flushed. With -data-dir sessions are instead persisted
// as-is and resume after the next boot's replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opd/internal/durable"
	"opd/internal/serve"
	"opd/internal/telemetry"
)

// newLogger builds the process logger from the -log-level / -log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	hopts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, hopts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want \"text\" or \"json\")", format)
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		maxSess    = flag.Int("max-sessions", 1024, "maximum live sessions; opens beyond this are rejected with 429")
		maxWindow  = flag.Int("max-window", 1<<20, "maximum window memory per session in profile elements (CW+TW); larger configs are rejected with 413")
		maxChunk   = flag.Int64("max-chunk", 8<<20, "maximum ingest request body in bytes; larger chunks are rejected with 413")
		idle       = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions idle this long, flushing their open phases (negative disables)")
		maxAge     = flag.Duration("max-age", 0, "hard session TTL regardless of activity (0 disables)")
		sweepEvery = flag.Duration("sweep-interval", 15*time.Second, "eviction janitor period")
		maxEvents  = flag.Int("max-events", 65536, "phase events retained per session for polling")
		grace      = flag.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight requests")
		dataDir    = flag.String("data-dir", "", "persist sessions here (WAL + snapshots) and recover them on boot; empty runs in-memory")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: \"always\", \"never\", or an interval like \"100ms\"")
		snapEvery  = flag.Int("snapshot-every", 64, "checkpoint full session state every this many chunks")
		flightLen  = flag.Int("flight-chunks", 64, "chunk traces retained per session in the flight recorder")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug logs every request)")
		logFormat  = flag.String("log-format", "text", "log output format: \"text\" (key=value) or \"json\"")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phased:", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	opts := serve.Options{
		MaxSessions:       *maxSess,
		MaxWindowElems:    *maxWindow,
		MaxChunkBytes:     *maxChunk,
		IdleTimeout:       *idle,
		MaxAge:            *maxAge,
		SweepInterval:     *sweepEvery,
		MaxEventsRetained: *maxEvents,
		Registry:          reg,
		SnapshotEvery:     *snapEvery,
		FlightChunks:      *flightLen,
		Logger:            logger,
	}
	if *dataDir != "" {
		policy, interval, err := durable.ParseSyncPolicy(*fsync)
		if err != nil {
			logger.Error("bad -fsync flag", "err", err)
			os.Exit(2)
		}
		store, err := durable.Open(durable.Options{
			Dir:          *dataDir,
			Policy:       policy,
			SyncInterval: interval,
			Registry:     reg,
		})
		if err != nil {
			logger.Error("opening data dir", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	srv := serve.NewServer(opts)
	if err := srv.Start(*addr); err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("listening",
		"addr", srv.Addr(),
		"debug_url", fmt.Sprintf("http://%s%s", srv.Addr(), telemetry.DebugPath),
		"metrics_url", fmt.Sprintf("http://%s/metrics", srv.Addr()))

	// Boot replay: the listener is up (liveness probes pass, the API
	// 503s) while the data dir replays; /readyz flips to 200 after.
	if *dataDir != "" {
		logger.Info("recovering sessions", "data_dir", *dataDir, "fsync", *fsync)
	}
	t0 := time.Now()
	recovered, dropped, err := srv.Recover()
	if err != nil {
		logger.Error("recovery failed", "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("ready",
			"recovered", recovered, "dropped", dropped, "dur", time.Since(t0))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately

	mode := "flushing open sessions"
	if *dataDir != "" {
		mode = "persisting open sessions"
	}
	logger.Info("shutting down", "mode", mode, "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
