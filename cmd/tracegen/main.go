// Tracegen executes a synthetic benchmark on the instrumented VM and
// writes its conditional branch trace and call-loop trace to disk.
//
// Usage:
//
//	tracegen -bench compress -scale 8 -out /tmp/compress
//
// writes /tmp/compress.branches and /tmp/compress.events. With -list it
// prints the available benchmarks; with -stats it also prints the trace's
// dynamic characteristics (the benchmark's Table 1(a) row).
package main

import (
	"flag"
	"fmt"
	"os"

	"opd/internal/baseline"
	"opd/internal/synth"
	"opd/internal/trace"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark name (see -list)")
		scale = flag.Int("scale", 8, "workload scale (trace size grows roughly linearly)")
		out   = flag.String("out", "", "output path prefix; writes <out>.branches and <out>.events")
		list  = flag.Bool("list", false, "list available benchmarks and exit")
		stats = flag.Bool("stats", false, "print dynamic execution characteristics")
	)
	flag.Parse()

	if *list {
		for _, b := range synth.All() {
			fmt.Printf("%-11s %s\n", b.Name, b.Description)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench is required (use -list to see options)")
		os.Exit(2)
	}
	branches, events, err := synth.Run(*bench, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *stats {
		loops, methods := events.Counts()
		fmt.Printf("benchmark:          %s (scale %d)\n", *bench, *scale)
		fmt.Printf("dynamic branches:   %d\n", len(branches))
		fmt.Printf("loop executions:    %d\n", loops)
		fmt.Printf("method invocations: %d\n", methods)
		fmt.Printf("recursion roots:    %d\n", baseline.CountRecursionRoots(events))
		fmt.Printf("distinct sites:     %d\n", branches.DistinctSites())
	}
	if *out == "" {
		if !*stats {
			fmt.Fprintln(os.Stderr, "tracegen: nothing to do: pass -out and/or -stats")
			os.Exit(2)
		}
		return
	}
	if err := writeFile(*out+".branches", func(f *os.File) error {
		return trace.WriteBranches(f, branches)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := writeFile(*out+".events", func(f *os.File) error {
		return trace.WriteEvents(f, events)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s.branches (%d elements) and %s.events (%d events)\n",
		*out, len(branches), *out, len(events))
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
