// Command loadgen is the closed-loop load harness for phased: it
// synthesizes a deterministic multi-session workload (invitro-style RPS
// ramp, chunk-size distribution, session churn, workload and protocol
// mixes over the synthetic benchmark suite) and drives it against a
// live server over the real wire protocols, reporting client-observed
// ingest and event-delivery latency percentiles, shed rates, and —
// with -phased-bin and -kill-after — recovery time after a kill -9
// under load.
//
// Point it at a running server:
//
//	loadgen -addr localhost:8080 -sessions 500 -target-rps 2 -duration 30s
//
// or let it spawn (and crash, and restart) its own:
//
//	loadgen -phased-bin ./phased -kill-after 10s -duration 25s
//	loadgen -phased-bin ./phased -suite -json BENCH_load.json
//
// or drive a whole cluster — phased nodes behind a spawned phasedgw
// gateway, with a node kill -9 that is never restarted (sessions are
// live-migrated to the survivors instead):
//
//	loadgen -phased-bin ./phased -gateway-bin ./phasedgw -protocols stream -kill-after 10s -duration 25s
//
// Exit codes: 0 on a clean run, 1 on a run or server failure, 2 on bad
// flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opd/internal/loadgen"
	"opd/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "", "phased server address (host:port); empty requires -phased-bin to spawn one")
		phasedBin = flag.String("phased-bin", "", "phased binary to spawn (and restart after -kill-after)")
		dataDir   = flag.String("data-dir", "", "data dir for the spawned server (default: a temp dir when -kill-after is set, else in-memory)")

		sessions = flag.Int("sessions", 64, "concurrent session slots")
		startRPS = flag.Float64("start-rps", 2, "per-session chunk rate at ramp start")
		stepRPS  = flag.Float64("step-rps", 0, "per-session rate increase per slot (0 jumps straight to target)")
		target   = flag.Float64("target-rps", 0, "per-session rate ceiling (0 holds the start rate)")
		slot     = flag.Duration("slot", 5*time.Second, "RPS ramp slot duration")
		duration = flag.Duration("duration", 30*time.Second, "run duration")
		chunkMin = flag.Int("chunk-min", 512, "minimum elements per chunk")
		chunkMax = flag.Int("chunk-max", 2048, "maximum elements per chunk")
		lifetime = flag.Duration("lifetime", 0, "mean session lifetime for churn (0 keeps sessions for the whole run)")
		mix      = flag.String("mix", "all", "workload mix: \"all\" or \"name=w,name=w\" over the synthetic benchmarks")
		protos   = flag.String("protocols", "stream", "protocol mix over stream, stream-branch, post, poll (\"name=w,...\")")
		scale    = flag.Int("scale", 2, "synthetic benchmark scale for the backing traces")
		seed     = flag.Uint64("seed", 1, "workload seed; identical seeds synthesize identical workloads")
		retries  = flag.Int("max-retries", 0, "cap on per-operation reconnects and shed retries (0 = unlimited)")

		cw       = flag.Int("cw", 500, "current window size for opened sessions")
		policy   = flag.String("policy", "adaptive", "trailing window policy: constant | adaptive | fixedinterval")
		model    = flag.String("model", "unweighted", "similarity model: unweighted | weighted")
		analyzer = flag.String("analyzer", "threshold", "analyzer: threshold | average")
		param    = flag.Float64("param", 0.6, "analyzer parameter")

		killAfter = flag.Duration("kill-after", 0, "kill -9 the spawned server this far into the run and restart it (requires -phased-bin; with -gateway-bin, kills node 1 and leaves it down)")
		gwBin     = flag.String("gateway-bin", "", "phasedgw binary: run the load through a spawned gateway over -cluster-nodes phased children (requires -phased-bin)")
		clusterN  = flag.Int("cluster-nodes", 3, "with -gateway-bin: how many phased nodes behind the gateway")
		suite     = flag.Bool("suite", false, "run the canonical benchmark suite instead of one ad-hoc run (requires -phased-bin; with -gateway-bin, includes the cluster scenario)")
		runName   = flag.String("run", "", "with -suite: run only the named scenario")
		jsonOut   = flag.String("json", "", "write the machine-readable report here (BENCH_load.json format)")
		verbose   = flag.Bool("v", false, "log harness progress to stderr")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected argument %q", flag.Arg(0))
	}
	if *addr == "" && *phasedBin == "" {
		fail("need a target: -addr to use a running server, or -phased-bin to spawn one")
	}
	if *addr != "" && *phasedBin != "" {
		fail("-addr and -phased-bin are mutually exclusive")
	}
	if *killAfter < 0 {
		fail("-kill-after must not be negative (got %v)", *killAfter)
	}
	if *killAfter > 0 && *phasedBin == "" {
		fail("-kill-after needs -phased-bin: only a spawned server can be killed and restarted")
	}
	if *killAfter > 0 && *killAfter >= *duration {
		fail("-kill-after %v must fall inside -duration %v", *killAfter, *duration)
	}
	if *gwBin != "" && *phasedBin == "" {
		fail("-gateway-bin needs -phased-bin: the gateway fronts spawned phased nodes")
	}
	if *gwBin != "" && *clusterN < 2 {
		fail("-cluster-nodes must be >= 2 (got %d)", *clusterN)
	}
	if *suite && *phasedBin == "" {
		fail("-suite needs -phased-bin: each scenario spawns a fresh server")
	}
	if *runName != "" && !*suite {
		fail("-run selects a -suite scenario; pass -suite too")
	}
	// The Spec's zero-value conventions (0 target = hold start, 0
	// lifetime = no churn) are for library callers; a literal zero or
	// negative where the flag has no such convention is a typo.
	if *sessions < 1 {
		fail("-sessions must be >= 1 (got %d)", *sessions)
	}
	if *startRPS <= 0 {
		fail("-start-rps must be positive (got %g)", *startRPS)
	}
	if *slot <= 0 {
		fail("-slot must be positive (got %v)", *slot)
	}
	if *duration <= 0 {
		fail("-duration must be positive (got %v)", *duration)
	}
	if *chunkMin < 1 || *chunkMax < *chunkMin {
		fail("chunk size range [%d, %d] is not 1 <= min <= max", *chunkMin, *chunkMax)
	}
	if *lifetime < 0 {
		fail("-lifetime must not be negative (got %v)", *lifetime)
	}
	if *scale < 1 {
		fail("-scale must be >= 1 (got %d)", *scale)
	}
	if *retries < 0 {
		fail("-max-retries must not be negative (got %d)", *retries)
	}

	wlMix, err := loadgen.ParseMix(*mix)
	if err != nil {
		fail("%v", err)
	}
	protoMix, err := loadgen.ParseProtocolMix(*protos)
	if err != nil {
		fail("%v", err)
	}
	spec := loadgen.Spec{
		Sessions:  *sessions,
		StartRPS:  *startRPS,
		StepRPS:   *stepRPS,
		TargetRPS: *target,
		Slot:      *slot,
		Duration:  *duration,
		ChunkMin:  *chunkMin,
		ChunkMax:  *chunkMax,
		Lifetime:  *lifetime,
		Scale:     *scale,
		Mix:       wlMix,
		Protocols: protoMix,
		Seed:      *seed,
		Config: serve.ConfigRequest{
			CW: *cw, Policy: *policy, Model: *model, Analyzer: *analyzer, Param: *param,
		},
		MaxRetries: *retries,
	}
	if _, err := loadgen.NewPlan(spec); err != nil {
		fail("%v", err)
	}

	logger := slog.New(slog.DiscardHandler)
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, spec, *addr, *phasedBin, *gwBin, *dataDir, *killAfter, *clusterN, *suite, *runName, *jsonOut, logger); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, spec loadgen.Spec, addr, bin, gwBin, dataDir string, killAfter time.Duration, clusterN int, suite bool, runName, jsonOut string, logger *slog.Logger) error {
	bf := loadgen.NewBenchFile()

	switch {
	case suite:
		workDir, err := os.MkdirTemp("", "loadgen-suite-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(workDir)
		scenarios := loadgen.DefaultSuite()
		if gwBin != "" {
			scenarios = append(scenarios, loadgen.ClusterScenario())
		}
		if runName != "" {
			kept := scenarios[:0]
			for _, sc := range scenarios {
				if sc.Name == runName {
					kept = append(kept, sc)
				}
			}
			if len(kept) == 0 {
				return fmt.Errorf("no suite scenario named %q", runName)
			}
			scenarios = kept
		}
		bf, err = loadgen.RunSuite(ctx, bin, gwBin, workDir, scenarios, logger, os.Stdout)
		if err != nil {
			return err
		}

	case gwBin != "":
		// Ad-hoc cluster run: the flag-built spec through a spawned
		// gateway; -kill-after fells node 1 for good.
		sc := loadgen.Scenario{Name: "adhoc-cluster", Spec: spec, KillAfter: killAfter, Cluster: clusterN}
		rep, err := loadgen.RunClusterScenario(ctx, bin, gwBin, sc, logger, os.Stdout)
		if err != nil {
			return err
		}
		bf.Runs = append(bf.Runs, loadgen.BenchRun{Name: sc.Name, Report: rep})

	case bin != "":
		// Ad-hoc run against a spawned server.
		sc := loadgen.Scenario{Name: "adhoc", Spec: spec, KillAfter: killAfter}
		workDir := dataDir
		if workDir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			workDir = tmp
		}
		rep, err := loadgen.RunScenario(ctx, bin, workDir, sc, logger, os.Stdout)
		if err != nil {
			return err
		}
		bf.Runs = append(bf.Runs, loadgen.BenchRun{Name: sc.Name, Report: rep})

	default:
		// Drive a server someone else is running.
		r, err := loadgen.NewRunner(spec, addr, logger)
		if err != nil {
			return err
		}
		rep := r.Run(ctx)
		rep.WriteHuman(os.Stdout)
		bf.Runs = append(bf.Runs, loadgen.BenchRun{Name: "adhoc", Report: rep})
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "\nwrote %s (%d runs)\n", jsonOut, len(bf.Runs))
	}
	for _, run := range bf.Runs {
		if run.Report.Errors.Unexpected > 0 {
			return fmt.Errorf("run %s observed %d unexpected errors", run.Name, run.Report.Errors.Unexpected)
		}
		if run.Report.Sessions.Opened == 0 {
			return fmt.Errorf("run %s never opened a session — is the server reachable?", run.Name)
		}
	}
	return nil
}
