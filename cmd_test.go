package opd

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the repository's executables once per test run and
// returns the directory holding them.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"tracegen", "baseline", "detect", "phasebench", "vmrun"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the executables")
	}
	bins := buildCmds(t)
	prefix := filepath.Join(t.TempDir(), "jlex")

	// tracegen: list, stats, and trace emission.
	listOut := runCmd(t, filepath.Join(bins, "tracegen"), "-list")
	for _, b := range []string{"compress", "mpegaudio", "jlex"} {
		if !strings.Contains(listOut, b) {
			t.Errorf("tracegen -list missing %s:\n%s", b, listOut)
		}
	}
	genOut := runCmd(t, filepath.Join(bins, "tracegen"),
		"-bench", "jlex", "-scale", "2", "-out", prefix, "-stats")
	if !strings.Contains(genOut, "dynamic branches") || !strings.Contains(genOut, "wrote") {
		t.Errorf("tracegen output:\n%s", genOut)
	}
	if _, err := os.Stat(prefix + ".branches"); err != nil {
		t.Fatal(err)
	}

	// baseline: phase table over the generated trace.
	baseOut := runCmd(t, filepath.Join(bins, "baseline"),
		"-trace", prefix, "-mpl", "500,1000", "-phases")
	if !strings.Contains(baseOut, "# phases") || !strings.Contains(baseOut, "phase   0") {
		t.Errorf("baseline output:\n%s", baseOut)
	}
	crisOut := runCmd(t, filepath.Join(bins, "baseline"),
		"-trace", prefix, "-mpl", "1000", "-cris")
	if !strings.Contains(crisOut, "loop") {
		t.Errorf("baseline -cris output:\n%s", crisOut)
	}
	hierOut := runCmd(t, filepath.Join(bins, "baseline"),
		"-trace", prefix, "-mpl", "1000", "-hierarchy")
	if !strings.Contains(hierOut, "loop id=") {
		t.Errorf("baseline -hierarchy output:\n%s", hierOut)
	}

	// detect: framework config and every preset, scored against the oracle.
	detOut := runCmd(t, filepath.Join(bins, "detect"),
		"-trace", prefix, "-cw", "500", "-policy", "adaptive", "-mpl", "1000", "-phases")
	for _, want := range []string{"adaptive/cw500", "phases detected", "score=", "oracle phases"} {
		if !strings.Contains(detOut, want) {
			t.Errorf("detect output missing %q:\n%s", want, detOut)
		}
	}
	for _, preset := range []string{"dhodapkar", "lu", "das"} {
		out := runCmd(t, filepath.Join(bins, "detect"),
			"-trace", prefix, "-preset", preset, "-cw", "500", "-mpl", "1000")
		if !strings.Contains(out, "score=") {
			t.Errorf("detect -preset %s output:\n%s", preset, out)
		}
	}

	// phasebench: the cheapest experiments at the smallest scale.
	pbOut := runCmd(t, filepath.Join(bins, "phasebench"),
		"-scale", "1", "-benchmarks", "jlex,db", "-exp", "table1b")
	if !strings.Contains(pbOut, "Table 1(b)") || !strings.Contains(pbOut, "jlex") {
		t.Errorf("phasebench output:\n%s", pbOut)
	}
	jsonOut := runCmd(t, filepath.Join(bins, "phasebench"),
		"-scale", "1", "-benchmarks", "jlex", "-exp", "table1a", "-json")
	if !strings.Contains(jsonOut, `"DynamicBranches"`) {
		t.Errorf("phasebench -json output:\n%s", jsonOut)
	}

	// vmrun: assemble, optimize, and execute the matrix-multiply sample.
	vmOut := runCmd(t, filepath.Join(bins, "vmrun"), "-optimize", "testdata/matmul.asm")
	if !strings.Contains(vmOut, "executed: 722 dynamic branches") {
		t.Errorf("vmrun output:\n%s", vmOut)
	}
	// C[0][0] = sum_k A[0k]*B[k0] with A[i]=3i+1, B[i]=i^5: spot-check one
	// output cell of the multiply.
	if !strings.Contains(vmOut, " 4044 ") {
		t.Errorf("vmrun result missing C[0][0]=4044:\n%s", vmOut)
	}
	vmDetect := runCmd(t, filepath.Join(bins, "vmrun"), "-detect", "-cw", "50", "testdata/matmul.asm")
	if !strings.Contains(vmDetect, "phases:") {
		t.Errorf("vmrun -detect output:\n%s", vmDetect)
	}
	vmCFG := runCmd(t, filepath.Join(bins, "vmrun"), "-cfg", "-inline", "testdata/matmul.asm")
	if !strings.Contains(vmCFG, "natural") && !strings.Contains(vmCFG, "loop: header") {
		t.Errorf("vmrun -cfg output:\n%s", vmCFG)
	}
	if !strings.Contains(vmCFG, "executed: 722 dynamic branches") {
		t.Errorf("vmrun -inline changed semantics:\n%s", vmCFG)
	}
}
