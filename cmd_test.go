package opd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"opd/internal/trace"
)

// listenAddrRe matches phased's structured startup log line, e.g.
//
//	time=... level=INFO msg=listening addr=127.0.0.1:43445 debug_url=...
var listenAddrRe = regexp.MustCompile(`\bmsg=listening\b.*\baddr=(\S+)`)

// listenAddr extracts the listen address from a phased log line, if the
// line is the startup announcement.
func listenAddr(line string) (string, bool) {
	m := listenAddrRe.FindStringSubmatch(line)
	if m == nil {
		return "", false
	}
	return m[1], true
}

// buildCmds compiles the repository's executables once per test run and
// returns the directory holding them.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"tracegen", "baseline", "detect", "phasebench", "vmrun", "phased", "loadgen"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the executables")
	}
	bins := buildCmds(t)
	prefix := filepath.Join(t.TempDir(), "jlex")

	// tracegen: list, stats, and trace emission.
	listOut := runCmd(t, filepath.Join(bins, "tracegen"), "-list")
	for _, b := range []string{"compress", "mpegaudio", "jlex"} {
		if !strings.Contains(listOut, b) {
			t.Errorf("tracegen -list missing %s:\n%s", b, listOut)
		}
	}
	genOut := runCmd(t, filepath.Join(bins, "tracegen"),
		"-bench", "jlex", "-scale", "2", "-out", prefix, "-stats")
	if !strings.Contains(genOut, "dynamic branches") || !strings.Contains(genOut, "wrote") {
		t.Errorf("tracegen output:\n%s", genOut)
	}
	if _, err := os.Stat(prefix + ".branches"); err != nil {
		t.Fatal(err)
	}

	// baseline: phase table over the generated trace.
	baseOut := runCmd(t, filepath.Join(bins, "baseline"),
		"-trace", prefix, "-mpl", "500,1000", "-phases")
	if !strings.Contains(baseOut, "# phases") || !strings.Contains(baseOut, "phase   0") {
		t.Errorf("baseline output:\n%s", baseOut)
	}
	crisOut := runCmd(t, filepath.Join(bins, "baseline"),
		"-trace", prefix, "-mpl", "1000", "-cris")
	if !strings.Contains(crisOut, "loop") {
		t.Errorf("baseline -cris output:\n%s", crisOut)
	}
	hierOut := runCmd(t, filepath.Join(bins, "baseline"),
		"-trace", prefix, "-mpl", "1000", "-hierarchy")
	if !strings.Contains(hierOut, "loop id=") {
		t.Errorf("baseline -hierarchy output:\n%s", hierOut)
	}

	// detect: framework config and every preset, scored against the oracle.
	detOut := runCmd(t, filepath.Join(bins, "detect"),
		"-trace", prefix, "-cw", "500", "-policy", "adaptive", "-mpl", "1000", "-phases")
	for _, want := range []string{"adaptive/cw500", "phases detected", "score=", "oracle phases"} {
		if !strings.Contains(detOut, want) {
			t.Errorf("detect output missing %q:\n%s", want, detOut)
		}
	}
	for _, preset := range []string{"dhodapkar", "lu", "das"} {
		out := runCmd(t, filepath.Join(bins, "detect"),
			"-trace", prefix, "-preset", preset, "-cw", "500", "-mpl", "1000")
		if !strings.Contains(out, "score=") {
			t.Errorf("detect -preset %s output:\n%s", preset, out)
		}
	}

	// phasebench: the cheapest experiments at the smallest scale.
	pbOut := runCmd(t, filepath.Join(bins, "phasebench"),
		"-scale", "1", "-benchmarks", "jlex,db", "-exp", "table1b")
	if !strings.Contains(pbOut, "Table 1(b)") || !strings.Contains(pbOut, "jlex") {
		t.Errorf("phasebench output:\n%s", pbOut)
	}
	jsonOut := runCmd(t, filepath.Join(bins, "phasebench"),
		"-scale", "1", "-benchmarks", "jlex", "-exp", "table1a", "-json")
	if !strings.Contains(jsonOut, `"DynamicBranches"`) {
		t.Errorf("phasebench -json output:\n%s", jsonOut)
	}

	// vmrun: assemble, optimize, and execute the matrix-multiply sample.
	vmOut := runCmd(t, filepath.Join(bins, "vmrun"), "-optimize", "testdata/matmul.asm")
	if !strings.Contains(vmOut, "executed: 722 dynamic branches") {
		t.Errorf("vmrun output:\n%s", vmOut)
	}
	// C[0][0] = sum_k A[0k]*B[k0] with A[i]=3i+1, B[i]=i^5: spot-check one
	// output cell of the multiply.
	if !strings.Contains(vmOut, " 4044 ") {
		t.Errorf("vmrun result missing C[0][0]=4044:\n%s", vmOut)
	}
	vmDetect := runCmd(t, filepath.Join(bins, "vmrun"), "-detect", "-cw", "50", "testdata/matmul.asm")
	if !strings.Contains(vmDetect, "phases:") {
		t.Errorf("vmrun -detect output:\n%s", vmDetect)
	}
	vmCFG := runCmd(t, filepath.Join(bins, "vmrun"), "-cfg", "-inline", "testdata/matmul.asm")
	if !strings.Contains(vmCFG, "natural") && !strings.Contains(vmCFG, "loop: header") {
		t.Errorf("vmrun -cfg output:\n%s", vmCFG)
	}
	if !strings.Contains(vmCFG, "executed: 722 dynamic branches") {
		t.Errorf("vmrun -inline changed semantics:\n%s", vmCFG)
	}
}

// phasePattern matches one detected-phase line of `detect -phases`:
//
//	phase   0: [1200,4800) (len 3600)
var phasePattern = regexp.MustCompile(`phase\s+\d+: \[(\d+),(\d+)\) \(len \d+\)`)

// TestPhasedServerE2E exercises the streaming server end to end as a
// black box: a tracegen workload streamed to a phased process in uneven
// chunks must yield exactly the phases the offline detect command finds,
// and SIGTERM must shut the server down cleanly while a session with an
// open phase is still live.
func TestPhasedServerE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the executables")
	}
	bins := buildCmds(t)
	prefix := filepath.Join(t.TempDir(), "jlex")
	runCmd(t, filepath.Join(bins, "tracegen"), "-bench", "jlex", "-scale", "2", "-out", prefix)

	// The offline ground truth: anchor-corrected phases from cmd/detect.
	detOut := runCmd(t, filepath.Join(bins, "detect"),
		"-trace", prefix, "-cw", "500", "-policy", "adaptive", "-phases", "-adjusted")
	wantPhases := phasePattern.FindAllStringSubmatch(detOut, -1)
	if len(wantPhases) == 0 {
		t.Fatalf("detect found no phases:\n%s", detOut)
	}

	// Start phased on an ephemeral port and wait for its listen line.
	srv := exec.Command(filepath.Join(bins, "phased"), "-addr", "127.0.0.1:0")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	logs := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return logBuf.String()
	}
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logBuf.WriteString(line + "\n")
			logMu.Unlock()
			if addr, ok := listenAddr(line); ok {
				addrCh <- addr
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("phased did not report a listen address")
	}

	// Load the trace the server will be fed.
	f, err := os.Open(prefix + ".branches")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.ReadBranches(bufio.NewReader(f))
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Open a session with the same configuration as the detect run.
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"cw":500,"policy":"adaptive"}`))
	if err != nil {
		t.Fatal(err)
	}
	var opened struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || opened.ID == "" {
		t.Fatalf("open session: status %d id %q", resp.StatusCode, opened.ID)
	}

	// Stream the trace in uneven chunks, each a self-contained binary
	// trace message.
	sizes := []int{1, 997, 4096, 13, 2048, 65536}
	for i, k := 0, 0; i < len(branches); k++ {
		end := i + sizes[k%len(sizes)]
		if end > len(branches) {
			end = len(branches)
		}
		var buf bytes.Buffer
		if err := trace.WriteBranches(&buf, branches[i:end]); err != nil {
			t.Fatal(err)
		}
		cresp, err := http.Post(base+"/v1/sessions/"+opened.ID+"/elements",
			"application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		cresp.Body.Close()
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("chunk at %d: status %d", i, cresp.StatusCode)
		}
		i = end
	}

	// Close the session; its summary must match the offline phases.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+opened.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Consumed       int64 `json:"consumed"`
		AdjustedPhases []struct {
			Start int64 `json:"start"`
			End   int64 `json:"end"`
		} `json:"adjusted_phases"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if sum.Consumed != int64(len(branches)) {
		t.Errorf("consumed %d, want %d", sum.Consumed, len(branches))
	}
	if len(sum.AdjustedPhases) != len(wantPhases) {
		t.Fatalf("streamed %d phases, detect found %d:\n%s\nphased log:\n%s",
			len(sum.AdjustedPhases), len(wantPhases), detOut, logs())
	}
	for i, p := range sum.AdjustedPhases {
		want := fmt.Sprintf("[%s,%s)", wantPhases[i][1], wantPhases[i][2])
		if got := fmt.Sprintf("[%d,%d)", p.Start, p.End); got != want {
			t.Errorf("phase %d: streamed %s, detect %s", i, got, want)
		}
	}

	// Leave a session with an open phase live, then SIGTERM: the server
	// must flush it and exit cleanly.
	resp2, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"cw":500}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&opened); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	var buf bytes.Buffer
	if err := trace.WriteBranches(&buf, branches[:4000]); err != nil {
		t.Fatal(err)
	}
	cresp, err := http.Post(base+"/v1/sessions/"+opened.ID+"/elements",
		"application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Drain stderr to EOF before Wait closes the pipe, or the
		// final log lines race with the scanner and get lost.
		<-scanDone
		done <- srv.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("phased exited uncleanly: %v\nlog:\n%s", err, logs())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("phased did not exit on SIGTERM\nlog:\n%s", logs())
	}
	if !strings.Contains(logs(), "flushing open sessions") {
		t.Errorf("phased log missing graceful-shutdown line:\n%s", logs())
	}
}

// phasedProc is one phased process started by startPhased.
type phasedProc struct {
	cmd      *exec.Cmd
	base     string // http://host:port
	logs     func() string
	scanDone chan struct{} // closed when the stderr scanner hits EOF
}

// wait drains stderr to EOF, then reaps the process. Calling cmd.Wait
// directly would close the pipe under the scanner and lose final lines.
func (p *phasedProc) wait() error {
	<-p.scanDone
	return p.cmd.Wait()
}

// startPhased launches a phased binary, waits for its listen line, and
// then polls /readyz until the server admits traffic (a durable server
// 503s while it replays its data dir).
func startPhased(t *testing.T, bin string, args ...string) *phasedProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	logs := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return logBuf.String()
	}
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logBuf.WriteString(line + "\n")
			logMu.Unlock()
			if addr, ok := listenAddr(line); ok {
				addrCh <- addr
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("phased did not report a listen address\nlog:\n%s", logs())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("phased never became ready\nlog:\n%s", logs())
		}
		time.Sleep(20 * time.Millisecond)
	}
	return &phasedProc{cmd: cmd, base: base, logs: logs, scanDone: scanDone}
}

// sendChunk posts one element chunk, asserting HTTP 200.
func sendChunk(t *testing.T, base, id string, elems trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBranches(&buf, elems); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions/"+id+"/elements",
		"application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk: status %d", resp.StatusCode)
	}
}

// TestPhasedCrashRecoveryE2E is the black-box durability proof: a phased
// process with a data dir is SIGKILLed mid-stream, a fresh process over
// the same directory replays the session (answering 503 on /readyz until
// it is ready), the client finishes the stream against the new process,
// and the final phases are exactly what the offline detect command finds
// for the uninterrupted trace.
func TestPhasedCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the executables")
	}
	bins := buildCmds(t)
	prefix := filepath.Join(t.TempDir(), "jlex")
	runCmd(t, filepath.Join(bins, "tracegen"), "-bench", "jlex", "-scale", "2", "-out", prefix)
	detOut := runCmd(t, filepath.Join(bins, "detect"),
		"-trace", prefix, "-cw", "500", "-policy", "adaptive", "-phases", "-adjusted")
	wantPhases := phasePattern.FindAllStringSubmatch(detOut, -1)
	if len(wantPhases) == 0 {
		t.Fatalf("detect found no phases:\n%s", detOut)
	}
	f, err := os.Open(prefix + ".branches")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.ReadBranches(bufio.NewReader(f))
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(t.TempDir(), "phased-data")
	durableArgs := []string{"-data-dir", dataDir, "-fsync", "always", "-snapshot-every", "8"}
	p1 := startPhased(t, filepath.Join(bins, "phased"), durableArgs...)

	resp, err := http.Post(p1.base+"/v1/sessions", "application/json",
		strings.NewReader(`{"cw":500,"policy":"adaptive"}`))
	if err != nil {
		t.Fatal(err)
	}
	var opened struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || opened.ID == "" {
		t.Fatalf("open session: status %d id %q", resp.StatusCode, opened.ID)
	}

	// Stream the first half in uneven chunks, then kill -9 the server.
	sizes := []int{997, 13, 4096, 1, 2048, 8192}
	half := len(branches) / 2
	for i, k := 0, 0; i < half; k++ {
		end := i + sizes[k%len(sizes)]
		if end > half {
			end = half
		}
		sendChunk(t, p1.base, opened.ID, branches[i:end])
		i = end
	}
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p1.wait()

	// A fresh process over the same data dir replays the session: every
	// acknowledged chunk survives (fsync=always), so the client simply
	// resumes where it stopped.
	p2 := startPhased(t, filepath.Join(bins, "phased"), durableArgs...)
	if !strings.Contains(p2.logs(), "msg=ready recovered=1") {
		t.Fatalf("restarted phased did not recover the session\nlog:\n%s", p2.logs())
	}
	sresp, err := http.Get(p2.base + "/v1/sessions/" + opened.ID)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("recovered session status: %d", sresp.StatusCode)
	}
	for i, k := half, 0; i < len(branches); k++ {
		end := i + sizes[k%len(sizes)]
		if end > len(branches) {
			end = len(branches)
		}
		sendChunk(t, p2.base, opened.ID, branches[i:end])
		i = end
	}

	// Close: the resumed session's phases must equal the offline detect.
	req, _ := http.NewRequest(http.MethodDelete, p2.base+"/v1/sessions/"+opened.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Consumed       int64 `json:"consumed"`
		AdjustedPhases []struct {
			Start int64 `json:"start"`
			End   int64 `json:"end"`
		} `json:"adjusted_phases"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if sum.Consumed != int64(len(branches)) {
		t.Errorf("consumed %d, want %d", sum.Consumed, len(branches))
	}
	if len(sum.AdjustedPhases) != len(wantPhases) {
		t.Fatalf("recovered session: %d phases, detect found %d:\n%s\nphased log:\n%s",
			len(sum.AdjustedPhases), len(wantPhases), detOut, p2.logs())
	}
	for i, p := range sum.AdjustedPhases {
		want := fmt.Sprintf("[%s,%s)", wantPhases[i][1], wantPhases[i][2])
		if got := fmt.Sprintf("[%d,%d)", p.Start, p.End); got != want {
			t.Errorf("phase %d: recovered %s, detect %s", i, got, want)
		}
	}

	// Graceful durable shutdown persists rather than flushes.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p2.wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("phased exited uncleanly: %v\nlog:\n%s", err, p2.logs())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("phased did not exit on SIGTERM\nlog:\n%s", p2.logs())
	}
	if !strings.Contains(p2.logs(), "persisting open sessions") {
		t.Errorf("phased log missing durable-shutdown line:\n%s", p2.logs())
	}
}

// TestLoadgenFlagValidation pins cmd/loadgen's boot contract, matching
// phased's conventions: nonsense flags are a clear exit-2 with a
// "loadgen:" diagnostic, never a harness that silently does nothing.
func TestLoadgenFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the executables")
	}
	bins := buildCmds(t)
	bin := filepath.Join(bins, "loadgen")

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no target", []string{}, "need a target"},
		{"both targets", []string{"-addr", "x:1", "-phased-bin", "y"}, "mutually exclusive"},
		{"positional junk", []string{"-addr", "x:1", "junk"}, "unexpected argument"},
		{"bad sessions", []string{"-addr", "x:1", "-sessions", "0"}, "sessions"},
		{"bad ramp", []string{"-addr", "x:1", "-start-rps", "5", "-target-rps", "2"}, "below start"},
		{"bad chunks", []string{"-addr", "x:1", "-chunk-min", "10", "-chunk-max", "5"}, "chunk size range"},
		{"bad mix", []string{"-addr", "x:1", "-mix", "nosuch=1"}, "unknown benchmark"},
		{"bad protocol", []string{"-addr", "x:1", "-protocols", "carrier-pigeon"}, "unknown protocol"},
		{"kill without bin", []string{"-addr", "x:1", "-kill-after", "5s"}, "-kill-after needs -phased-bin"},
		{"kill past end", []string{"-phased-bin", "y", "-kill-after", "40s", "-duration", "30s"}, "must fall inside"},
		{"suite without bin", []string{"-addr", "x:1", "-suite"}, "-suite needs -phased-bin"},
		{"run without suite", []string{"-addr", "x:1", "-run", "x"}, "pass -suite too"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != 2 {
				t.Fatalf("loadgen %v: err %v, want exit 2\n%s", tc.args, err, out)
			}
			if !strings.Contains(string(out), "loadgen: "+tc.want) &&
				!strings.Contains(string(out), tc.want) {
				t.Fatalf("loadgen %v diagnostic missing %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}

// TestLoadgenE2E drives the smallest real harness run: loadgen against
// a phased process over every protocol, with a JSON report that has to
// add up.
func TestLoadgenE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the executables")
	}
	bins := buildCmds(t)
	p := startPhased(t, filepath.Join(bins, "phased"))

	jsonPath := filepath.Join(t.TempDir(), "BENCH_load.json")
	out, err := exec.Command(filepath.Join(bins, "loadgen"),
		"-addr", strings.TrimPrefix(p.base, "http://"),
		"-sessions", "6", "-start-rps", "6", "-duration", "2s",
		"-chunk-min", "64", "-chunk-max", "256", "-scale", "1",
		"-mix", "jlex,jess", "-protocols", "stream=2,post=1,poll=1",
		"-json", jsonPath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	for _, want := range []string{"sessions:", "ingest:", "latency:", "errors:    none"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("loadgen report missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		GoVersion string `json:"go_version"`
		Runs      []struct {
			Name   string `json:"name"`
			Ingest struct {
				Chunks   int64 `json:"chunks"`
				Elements int64 `json:"elements"`
			} `json:"ingest"`
			Sessions struct {
				Opened    int64 `json:"opened"`
				Completed int64 `json:"completed"`
			} `json:"sessions"`
			Errors struct {
				Unexpected int64 `json:"unexpected"`
			} `json:"errors"`
			Server map[string]float64 `json:"server"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("BENCH_load.json: %v\n%s", err, data)
	}
	if bench.GoVersion == "" || len(bench.Runs) != 1 {
		t.Fatalf("BENCH_load.json shape: %s", data)
	}
	run := bench.Runs[0]
	if run.Ingest.Chunks == 0 || run.Sessions.Opened < 6 || run.Sessions.Completed == 0 {
		t.Fatalf("no throughput in BENCH_load.json: %s", data)
	}
	if run.Errors.Unexpected != 0 {
		t.Fatalf("unexpected errors: %s", data)
	}
	if got := run.Server["opd_serve_ingest_elements_total"]; got != float64(run.Ingest.Elements) {
		t.Fatalf("server counted %.0f elements, harness counted %d", got, run.Ingest.Elements)
	}
}
