// Package opd's root benchmark harness regenerates every table and figure
// of the paper's evaluation (one benchmark per exhibit, over a reduced
// workload so a full -bench=. pass stays tractable) and measures the
// throughput of each pipeline stage: VM interpretation, trace IO, the
// oracle, the detectors, and scoring. cmd/phasebench runs the same
// experiments at full scale with rendered output.
package opd

import (
	"bytes"
	"testing"

	"opd/internal/baseline"
	"opd/internal/core"
	"opd/internal/experiments"
	"opd/internal/score"
	"opd/internal/synth"
	"opd/internal/trace"
	"opd/internal/vm"
)

// benchOptions is the reduced experiment configuration used by the
// per-table benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:      1,
		Benchmarks: []string{"compress", "db", "jack"},
		MPLs:       []int64{250, 500, 1000},
		CWSizes:    []int{100, 250, 500, 1000, 2500},
	}
}

func BenchmarkTable1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Table1a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Table1b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Table2a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Table2b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Fig7a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Fig7b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- extension experiments ----

func BenchmarkSkipSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).SkipSweep(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).ProfileSources(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).ClientBenefit(500, 100, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeedVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(benchOptions()).SeedVariance(500, []int32{7, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- pipeline stage micro-benchmarks ----

var benchWorkload struct {
	branches trace.Trace
	events   trace.Events
}

func workload(b *testing.B) (trace.Trace, trace.Events) {
	b.Helper()
	if benchWorkload.branches == nil {
		branches, events, err := synth.Run("db", 2)
		if err != nil {
			b.Fatal(err)
		}
		benchWorkload.branches = branches
		benchWorkload.events = events
	}
	return benchWorkload.branches, benchWorkload.events
}

// BenchmarkVMInterp measures raw interpreter + instrumentation throughput
// (one complete jlex run per iteration).
func BenchmarkVMInterp(b *testing.B) {
	bench, ok := synth.ByName("jlex")
	if !ok {
		b.Fatal("jlex missing")
	}
	p := bench.Build(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := vm.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracle measures baseline.Compute over a cached call-loop trace.
func BenchmarkOracle(b *testing.B) {
	branches, events := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Compute(events, int64(len(branches)), 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// Detector throughput over a cached trace, per policy combination. The
// per-op metric is one full pass over the trace; b.SetBytes reports
// elements processed so ns/element is derivable.
func benchmarkDetector(b *testing.B, cfg core.Config) {
	branches, _ := workload(b)
	b.SetBytes(int64(len(branches)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cfg.MustNew()
		core.RunTrace(d, branches)
	}
}

func BenchmarkDetectorUnweightedConstant(b *testing.B) {
	benchmarkDetector(b, core.Config{CWSize: 1000, TW: core.ConstantTW,
		Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6})
}

func BenchmarkDetectorWeightedConstant(b *testing.B) {
	benchmarkDetector(b, core.Config{CWSize: 1000, TW: core.ConstantTW,
		Model: core.WeightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6})
}

func BenchmarkDetectorUnweightedAdaptive(b *testing.B) {
	benchmarkDetector(b, core.Config{CWSize: 1000, TW: core.AdaptiveTW,
		Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6})
}

func BenchmarkDetectorWeightedAdaptive(b *testing.B) {
	benchmarkDetector(b, core.Config{CWSize: 1000, TW: core.AdaptiveTW,
		Model: core.WeightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6})
}

func BenchmarkDetectorFixedInterval(b *testing.B) {
	benchmarkDetector(b, core.FixedInterval(1000, core.UnweightedModel, core.ThresholdAnalyzer, 0.5))
}

// BenchmarkDetectorSkipSweep is the ablation for the skip-factor
// cost/accuracy trade-off (§4.2): the same detector at skip factors 1, 8,
// 64, and CW.
func BenchmarkDetectorSkipSweep(b *testing.B) {
	for _, skip := range []int{1, 8, 64, 1000} {
		b.Run(skipName(skip), func(b *testing.B) {
			benchmarkDetector(b, core.Config{CWSize: 1000, SkipFactor: skip, TW: core.ConstantTW,
				Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6})
		})
	}
}

func skipName(skip int) string {
	switch skip {
	case 1000:
		return "skip=cw"
	case 1:
		return "skip=1"
	case 8:
		return "skip=8"
	default:
		return "skip=64"
	}
}

// BenchmarkOracleMerging is the ablation for the oracle's distance-one CRI
// merging (DESIGN.md §5): with and without combining perfect nests and
// call runs.
func BenchmarkOracleMerging(b *testing.B) {
	branches, events := workload(b)
	for _, sub := range []struct {
		name string
		opts baseline.Options
	}{
		{"merged", baseline.Options{}},
		{"unmerged", baseline.Options{DisableMerging: true}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.ComputeWithOptions(events, int64(len(branches)), 1000, sub.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScoreEvaluate measures the accuracy metric itself.
func BenchmarkScoreEvaluate(b *testing.B) {
	branches, events := workload(b)
	sol, err := baseline.Compute(events, int64(len(branches)), 1000)
	if err != nil {
		b.Fatal(err)
	}
	d := core.Config{CWSize: 500, TW: core.ConstantTW,
		Model: core.UnweightedModel, Analyzer: core.ThresholdAnalyzer, Param: 0.6}.MustNew()
	core.RunTrace(d, branches)
	phases := d.Phases()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		score.Evaluate(phases, sol)
	}
}

// BenchmarkTraceIO measures binary trace serialization round trips.
func BenchmarkTraceIO(b *testing.B) {
	branches, _ := workload(b)
	b.SetBytes(int64(len(branches)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteBranches(&buf, branches); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadBranches(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
